package analysis

import (
	"go/ast"
	"go/types"
)

// simScopes are the deterministic-replay packages: everything the
// byte-identical figure goldens, the sim-vs-live agreement tests and
// the any-worker-count sweep identity rest on. Matched by
// whole-segment path suffix so the analysistest twins under
// testdata/src/ are scoped identically.
var simScopes = []string{
	"internal/des",
	"internal/sched",
	"internal/cluster",
	"internal/experiments",
}

// simGraphScopes restricts mixed live/sim packages to the call graph
// of their pure simulator-shared entry point: reissue/hedge/fault's
// live Injector legitimately uses wall-clock timers, but everything
// reachable from Decide — the one function both worlds consult — must
// stay pure.
var simGraphScopes = map[string]string{
	"reissue/hedge/fault": "Decide",
}

// bannedTimeFuncs are the wall-clock entry points of package time; a
// deterministic-replay package that calls one produces runs that
// cannot replay. (Pure conversions and constants like time.Duration
// or time.Millisecond remain fine.)
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRandFuncs are the math/rand constructors that produce
// explicitly seeded generators; every other top-level math/rand
// function draws from the global, interleaving-dependent source.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// SimDeterminism forbids, inside the deterministic-replay packages,
// the four constructs that make a simulated run depend on anything
// but its inputs: wall-clock reads (time.Now/Since/Sleep/...),
// global math/rand draws (seeded *rand.Rand values are fine), `go`
// statements (scheduler-order dependence), and `range` over maps
// (iteration-order dependence). In mixed live/sim packages only the
// simulator-shared call graph (fault.Decide and everything it
// reaches) is checked.
var SimDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc: "forbid wall-clock, global rand, goroutines and map iteration " +
		"in the deterministic-replay packages",
	Run: runSimDeterminism,
}

func runSimDeterminism(pass *Pass) error {
	path := pass.Pkg.Path()
	inScope := false
	for _, s := range simScopes {
		if PathHasSuffix(path, s) {
			inScope = true
			break
		}
	}
	var reachable map[*types.Func]bool
	if !inScope {
		for suffix, root := range simGraphScopes {
			if PathHasSuffix(path, suffix) {
				reachable = reachableFuncs(pass, root)
				inScope = len(reachable) > 0
				break
			}
		}
	}
	if !inScope {
		return nil
	}

	check := func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in a deterministic-replay package: scheduling order is not replayable")
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(), "range over map in a deterministic-replay package: iteration order is not replayable")
				}
			}
		case *ast.CallExpr:
			pkgPath, fn := calleePkgFunc(pass, n)
			switch pkgPath {
			case "time":
				if bannedTimeFuncs[fn] {
					pass.Reportf(n.Pos(), "time.%s in a deterministic-replay package: simulated time must not read the wall clock", fn)
				}
			case "math/rand", "math/rand/v2":
				if !allowedRandFuncs[fn] {
					pass.Reportf(n.Pos(), "global %s.%s in a deterministic-replay package: draw from an explicitly seeded generator instead", pathBase(pkgPath), fn)
				}
			}
		}
		return true
	}

	if reachable == nil {
		pass.Inspect(check)
		return nil
	}
	// Graph-scoped package: only walk the bodies of reachable
	// functions.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil || !reachable[obj] {
				continue
			}
			ast.Inspect(fd.Body, check)
		}
	}
	return nil
}

// calleePkgFunc resolves a call of the form pkg.Fn where pkg is an
// imported package name, returning the package's import path and the
// function name; otherwise it returns "", "".
func calleePkgFunc(pass *Pass, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

func pathBase(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}

// reachableFuncs computes the functions of this package reachable
// from the named root function (or method) through intra-package
// references — the static call graph, conservatively including
// method values and function references.
func reachableFuncs(pass *Pass, rootName string) map[*types.Func]bool {
	decls := map[*types.Func]*ast.FuncDecl{}
	var roots []*types.Func
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			decls[obj] = fd
			if fd.Name.Name == rootName {
				roots = append(roots, obj)
			}
		}
	}
	reach := map[*types.Func]bool{}
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if reach[fn] {
			return
		}
		reach[fn] = true
		fd := decls[fn]
		if fd == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if callee, ok := pass.TypesInfo.Uses[id].(*types.Func); ok && callee.Pkg() == pass.Pkg {
				if _, local := decls[callee]; local {
					visit(callee)
				}
			}
			return true
		})
	}
	for _, r := range roots {
		visit(r)
	}
	return reach
}
