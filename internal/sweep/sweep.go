// Package sweep is the dispatcher/worker harness for evaluating
// independent simulation points — figure series, parameter grids,
// budget sweeps — over a pool of warm, per-worker engines.
//
// The shape is a dispatcher plus N workers: the dispatcher hands out
// point indices over a channel, and each worker evaluates its points
// one at a time against a private Env. The Env carries the worker's
// warm engine: a point wraps each cluster it builds with Env.Warm,
// which transfers the previous point's pooled simulation state
// (event slab, request arena, query records, server queues — the
// PR 3 runState) into the new cluster via cluster.AdoptState. A
// worker therefore pays for engine construction once and every
// subsequent point on that worker runs allocation-warm, matching the
// sequential harness's steady state.
//
// Determinism: a point must be a pure function of its own inputs —
// every cluster re-derives its RNG streams from its Config seed on
// each run, so results are independent of which worker evaluates a
// point, of scheduling order, and of the worker count. Results are
// merged by point index, never by completion order. Per-point seeds
// should be derived with Seed (stats.Mix64 over base seed and point
// index) so shuffling or re-chunking a grid never changes any
// point's stream.
package sweep

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/stats"
)

// Point is one independent unit of sweep work.
type Point struct {
	// Label identifies the point in errors and progress output,
	// e.g. "3a/Queueing/B=0.05".
	Label string
	// Run evaluates the point. It must write its results into
	// storage no other point touches (its own slice slot, its own
	// captured variables); the harness guarantees all writes are
	// visible to the caller once Run returns.
	Run func(env *Env) error
}

// Options configures a sweep.
type Options struct {
	// Workers is the pool size. Zero or negative selects
	// runtime.NumCPU(). One runs the points inline on the calling
	// goroutine with a single warm Env — the sequential path, with
	// no goroutines or channels.
	Workers int
	// Progress, when non-nil, receives periodic progress lines
	// (points completed, rate, ETA) and a final summary.
	Progress io.Writer
	// Name labels progress output; defaults to "sweep".
	Name string
	// ProgressEvery is the reporting interval; defaults to 2s.
	ProgressEvery time.Duration
}

// Env is a worker's private environment, passed to every point the
// worker evaluates. It carries the worker's warm engine between
// points.
type Env struct {
	// Worker is the worker's index in [0, Workers).
	Worker int
	// Point is the index of the point currently being evaluated,
	// set by the harness before each Run. Combined with Seed it
	// gives a point a deterministic stream independent of
	// scheduling.
	Point int

	donor *cluster.Cluster
}

// Warm hands the worker's pooled engine state to c and returns c.
// Call it on each cluster a point builds, immediately before the
// cluster's first run; the cluster adopts the previous point's event
// slab, arenas, and server pool, so steady-state points allocate
// like repeated runs on a single cluster. Order matters when a point
// builds several clusters: warm each one after the previous cluster
// has finished all of its runs, because adoption transfers (not
// copies) the pooled state.
func (e *Env) Warm(c *cluster.Cluster) *cluster.Cluster {
	if e == nil || c == nil {
		return c
	}
	if e.donor != nil && e.donor != c {
		c.AdoptState(e.donor)
	}
	e.donor = c
	return c
}

// WarmCluster is Warm lifted over a (cluster, error) constructor
// result, so call sites can wrap builders directly:
//
//	wl, err := env.WarmCluster(workload.Queueing(o))
func (e *Env) WarmCluster(c *cluster.Cluster, err error) (*cluster.Cluster, error) {
	if err != nil {
		return c, err
	}
	return e.Warm(c), nil
}

// Seed derives the deterministic seed for point i of a sweep from
// the sweep's base seed, using the repository's shared Mix64
// finalizer. The result depends only on (base, i) — never on worker
// count or scheduling — and is never zero (many Config consumers
// treat a zero seed as "unset").
func Seed(base uint64, i int) uint64 {
	return stats.Mix64NonZero(base ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
}

// Run evaluates every point and returns the first error by point
// index (not completion order), so a failing grid reports the same
// point no matter how the pool scheduled it. A panicking point is
// converted into an error naming the point; it never deadlocks the
// dispatcher. On error the remaining undispatched points are
// skipped.
func Run(points []Point, opt Options) error {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(points) {
		workers = len(points)
	}
	if len(points) == 0 {
		return nil
	}

	prog := newProgress(opt, len(points))
	defer prog.close()

	errs := make([]error, len(points))
	if workers <= 1 {
		env := &Env{Worker: 0}
		for i := range points {
			env.Point = i
			if err := runPoint(&points[i], i, env); err != nil {
				prog.fail(i, label(&points[i], i))
				return err
			}
			prog.done()
		}
		return nil
	}

	idx := make(chan int)
	var failed atomic.Bool
	var wg sync.WaitGroup
	go func() {
		for i := range points {
			if failed.Load() {
				break
			}
			idx <- i
		}
		close(idx)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			env := &Env{Worker: w}
			for i := range idx {
				// Drain without evaluating once any point failed, so
				// the dispatcher never blocks on a send with no
				// receivers and the sweep winds down promptly.
				if failed.Load() {
					continue
				}
				env.Point = i
				if err := runPoint(&points[i], i, env); err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				prog.done()
			}
		}(w)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			prog.fail(i, label(&points[i], i))
			return err
		}
	}
	return nil
}

// runPoint evaluates one point, converting a panic into an error
// that names the point.
func runPoint(p *Point, i int, env *Env) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep: point %d (%s) panicked: %v", i, label(p, i), r)
		}
	}()
	if p.Run == nil {
		return fmt.Errorf("sweep: point %d (%s) has no Run func", i, label(p, i))
	}
	if err := p.Run(env); err != nil {
		return fmt.Errorf("sweep: point %d (%s): %w", i, label(p, i), err)
	}
	return nil
}

func label(p *Point, i int) string {
	if p.Label != "" {
		return p.Label
	}
	return fmt.Sprintf("#%d", i)
}

// Map evaluates fn over items through the pool and returns the
// results in item order. It is the convenience shape for grids whose
// points all produce a value of the same type.
func Map[T, R any](items []T, opt Options, fn func(env *Env, i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	points := make([]Point, len(items))
	for i := range items {
		i := i
		points[i] = Point{
			Label: fmt.Sprintf("#%d", i),
			Run: func(env *Env) error {
				r, err := fn(env, i, items[i])
				if err != nil {
					return err
				}
				out[i] = r
				return nil
			},
		}
	}
	if err := Run(points, opt); err != nil {
		return nil, err
	}
	return out, nil
}

// progress is the sweep-level progress/ETA reporter: a counter
// shared by the workers and one goroutine that periodically renders
// it, so worker hot loops never block on the writer.
type progress struct {
	w         io.Writer
	name      string
	total     int
	completed atomic.Int64
	start     time.Time
	stop      chan struct{}
	stopped   sync.WaitGroup
	// failure, when non-empty, identifies the failing point
	// ("point 3 (label)"); the final summary then reports the
	// failure instead of the success shape. Written by Run before
	// close, read by the final report — never concurrently with the
	// ticker goroutine, which only renders non-final lines.
	failure string
}

func newProgress(opt Options, total int) *progress {
	p := &progress{w: opt.Progress, total: total, start: time.Now()}
	if p.w == nil {
		return p
	}
	p.name = opt.Name
	if p.name == "" {
		p.name = "sweep"
	}
	every := opt.ProgressEvery
	if every <= 0 {
		every = 2 * time.Second
	}
	p.stop = make(chan struct{})
	p.stopped.Add(1)
	go func() {
		defer p.stopped.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				p.report(false)
			case <-p.stop:
				return
			}
		}
	}()
	return p
}

func (p *progress) done() {
	p.completed.Add(1)
}

// fail records the failing point for the final summary.
func (p *progress) fail(i int, label string) {
	p.failure = fmt.Sprintf("point %d (%s)", i, label)
}

func (p *progress) report(final bool) {
	n := int(p.completed.Load())
	elapsed := time.Since(p.start)
	// A first tick on a coarse clock, or a clock step, can make
	// elapsed zero or negative; a rate computed from it would be
	// NaN/Inf/negative and the ETA nonsense.
	rate := 0.0
	if elapsed > 0 {
		rate = float64(n) / elapsed.Seconds()
	} else {
		elapsed = 0
	}
	if final {
		if p.failure != "" {
			fmt.Fprintf(p.w, "%s: FAILED at %s after %d/%d points, %s elapsed\n",
				p.name, p.failure, n, p.total, elapsed.Round(time.Millisecond))
			return
		}
		fmt.Fprintf(p.w, "%s: %d/%d points in %s (%.1f pts/s)\n",
			p.name, n, p.total, elapsed.Round(time.Millisecond), rate)
		return
	}
	eta := "?"
	if n > 0 && rate > 0 {
		rem := time.Duration(float64(p.total-n) / rate * float64(time.Second))
		eta = rem.Round(time.Second).String()
	}
	fmt.Fprintf(p.w, "%s: %d/%d points (%.1f pts/s, ETA %s)\n",
		p.name, n, p.total, rate, eta)
}

func (p *progress) close() {
	if p.w == nil {
		return
	}
	close(p.stop)
	p.stopped.Wait()
	p.report(true)
}
