package sweep

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/reissue"
)

func TestMapPreservesItemOrder(t *testing.T) {
	items := make([]int, 40)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 7} {
		got, err := Map(items, Options{Workers: workers}, func(env *Env, i, item int) (int, error) {
			if env.Point != i {
				return 0, fmt.Errorf("env.Point = %d for point %d", env.Point, i)
			}
			// Stagger completion so out-of-order finishes would show.
			time.Sleep(time.Duration((len(items)-i)%5) * time.Millisecond)
			return item * item, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunEmptyAndNilRun(t *testing.T) {
	if err := Run(nil, Options{}); err != nil {
		t.Fatalf("empty sweep: %v", err)
	}
	err := Run([]Point{{Label: "hole"}}, Options{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "hole") {
		t.Fatalf("nil Run func: %v", err)
	}
}

// TestRunPanicNamesPoint is the ISSUE's dispatcher-safety
// regression: a panicking point must fail the sweep with the point's
// identity in the error, not deadlock the dispatcher.
func TestRunPanicNamesPoint(t *testing.T) {
	for _, workers := range []int{1, 4} {
		points := make([]Point, 20)
		for i := range points {
			i := i
			points[i] = Point{
				Label: fmt.Sprintf("grid/p%d", i),
				Run: func(*Env) error {
					if i == 11 {
						panic("boom")
					}
					return nil
				},
			}
		}
		done := make(chan error, 1)
		go func() { done <- Run(points, Options{Workers: workers}) }()
		select {
		case err := <-done:
			if err == nil {
				t.Fatalf("workers=%d: panic not surfaced", workers)
			}
			for _, want := range []string{"grid/p11", "panicked", "boom"} {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("workers=%d: error %q missing %q", workers, err, want)
				}
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: sweep deadlocked on panic", workers)
		}
	}
}

func TestRunErrorNamesPoint(t *testing.T) {
	boom := errors.New("bad point")
	points := []Point{
		{Label: "a", Run: func(*Env) error { return nil }},
		{Label: "b", Run: func(*Env) error { return boom }},
	}
	err := Run(points, Options{Workers: 1})
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "(b)") {
		t.Fatalf("error lost identity: %v", err)
	}
}

func TestSeedDeterministicAndNonZero(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		s := Seed(0, i)
		if s == 0 {
			t.Fatalf("Seed(0, %d) = 0", i)
		}
		if s != Seed(0, i) {
			t.Fatalf("Seed(0, %d) not stable", i)
		}
		if j, dup := seen[s]; dup {
			t.Fatalf("Seed collision between points %d and %d", j, i)
		}
		seen[s] = i
	}
	if Seed(1, 5) == Seed(2, 5) {
		t.Fatal("Seed ignores the base")
	}
}

// TestWarmEnginesReplayIdentical drives the harness end to end the
// way the figure jobs do — every point builds its own cluster,
// warmed from the worker's previous point — and checks the merged
// grid is byte-identical to cold sequential evaluation at every
// worker count.
func TestWarmEnginesReplayIdentical(t *testing.T) {
	cfg := func(i int) cluster.Config {
		return cluster.Config{
			Servers:     4,
			ArrivalRate: cluster.ArrivalRateForUtilization(0.4, 4, 10),
			Queries:     600,
			Warmup:      60,
			Source:      cluster.DistSource{Dist: stats.NewExponential(0.1)},
			Seed:        Seed(42, i),
		}
	}
	const n = 12
	eval := func(workers int) ([]float64, error) {
		out := make([]float64, n)
		points := make([]Point, n)
		for i := range points {
			i := i
			points[i] = Point{
				Label: fmt.Sprintf("p%d", i),
				Run: func(env *Env) error {
					c, err := env.WarmCluster(cluster.New(cfg(i)))
					if err != nil {
						return err
					}
					out[i] = c.RunDetailed(reissue.SingleR{D: 2, Q: 0.1}).Duration
					return nil
				},
			}
		}
		return out, Run(points, Options{Workers: workers})
	}

	want, err := eval(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		got, err := eval(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: point %d = %v, sequential %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestFailedSweepSummaryNamesFailure: a failed sweep's final
// progress line must say which point failed, not render the
// success-shaped "n/N points in ..." summary as if the grid had
// merely been short.
func TestFailedSweepSummaryNamesFailure(t *testing.T) {
	boom := errors.New("bad point")
	for _, workers := range []int{1, 3} {
		var buf bytes.Buffer
		points := make([]Point, 8)
		for i := range points {
			i := i
			points[i] = Point{
				Label: fmt.Sprintf("grid/p%d", i),
				Run: func(*Env) error {
					if i == 5 {
						return boom
					}
					return nil
				},
			}
		}
		err := Run(points, Options{Workers: workers, Progress: &buf, Name: "demo"})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out := buf.String()
		for _, want := range []string{"FAILED", "point 5 (grid/p5)"} {
			if !strings.Contains(out, want) {
				t.Errorf("workers=%d: failed-sweep summary missing %q:\n%s", workers, want, out)
			}
		}
		if strings.Contains(out, "points in ") {
			t.Errorf("workers=%d: failed sweep printed the success-shaped summary:\n%s", workers, out)
		}
	}
}

// TestProgressReportGuardsDegenerateElapsed: a report rendered with
// no measurable elapsed time (first tick on a coarse clock, or a
// clock step) must not print a negative/Inf/NaN rate or a negative
// ETA.
func TestProgressReportGuardsDegenerateElapsed(t *testing.T) {
	var buf bytes.Buffer
	p := &progress{w: &buf, name: "demo", total: 10, start: time.Now().Add(time.Minute)}
	p.done()
	p.report(false)
	p.report(true)
	out := buf.String()
	for _, bad := range []string{"(-", "ETA -", "NaN", "Inf"} {
		if strings.Contains(out, bad) {
			t.Errorf("degenerate-elapsed report contains %q:\n%s", bad, out)
		}
	}
	if !strings.Contains(out, "ETA ?") {
		t.Errorf("unmeasurable rate should leave the ETA unknown:\n%s", out)
	}
}

func TestProgressReporting(t *testing.T) {
	var buf bytes.Buffer
	items := make([]int, 30)
	_, err := Map(items, Options{
		Workers: 2, Progress: &buf, Name: "demo", ProgressEvery: time.Millisecond,
	}, func(_ *Env, i, _ int) (int, error) {
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo: 30/30 points in ") {
		t.Fatalf("missing final summary:\n%s", out)
	}
	if !strings.Contains(out, "ETA") {
		t.Fatalf("missing periodic ETA line:\n%s", out)
	}
}
