package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/reissue"
)

// The shim's whole contract is type identity: every name in
// internal/core must be an alias of (or forwarding variable for) the
// corresponding repro/reissue name, so values flow freely between old
// internal callers and the public API. These declarations are
// compile-time assertions of that contract — assigning a core value
// to a reissue-typed variable (and vice versa) only compiles while
// the alias holds.
var (
	_ reissue.Policy    = core.None{}
	_ reissue.None      = core.None{}
	_ reissue.SingleR   = core.SingleR{}
	_ reissue.SingleD   = core.SingleD{}
	_ reissue.Immediate = core.Immediate{}
	_ reissue.MultipleR = core.MultipleR{}

	_ reissue.Prediction     = core.Prediction{}
	_ reissue.RunResult      = core.RunResult{}
	_ reissue.System         = core.SystemFunc(nil)
	_ reissue.SystemFunc     = core.SystemFunc(nil)
	_ reissue.AdaptiveConfig = core.AdaptiveConfig{}
	_ reissue.AdaptiveTrial  = core.AdaptiveTrial{}
	_ reissue.AdaptiveResult = core.AdaptiveResult{}

	_ reissue.BudgetTrial        = core.BudgetTrial{}
	_ reissue.BudgetSearchConfig = core.BudgetSearchConfig{}
	_ reissue.BudgetSearchResult = core.BudgetSearchResult{}
	_ reissue.SLAConfig          = core.SLAConfig{}
	_ reissue.SLAResult          = core.SLAResult{}

	_ reissue.OnlineConfig   = core.OnlineConfig{}
	_ *reissue.OnlineAdapter = (*core.OnlineAdapter)(nil)
)

// Forwarding variables must point at the reissue implementations:
// assigning them to variables of the reissue functions' exact types
// only compiles while the signatures stay in sync.
var (
	_ func(delays, probs []float64) (reissue.MultipleR, error)                                             = core.NewMultipleR
	_ func(d1, q1, d2, q2 float64) (reissue.MultipleR, error)                                              = core.DoubleR
	_ func(rx, ry []float64, k, b float64) (reissue.SingleR, reissue.Prediction, error)                    = core.ComputeOptimalSingleR
	_ func(rx []float64, pairs []reissue.Point, k, b float64) (reissue.SingleR, reissue.Prediction, error) = core.ComputeOptimalSingleRCorrelated
	_ func(rx, ry []float64, p reissue.SingleR, k float64) reissue.Prediction                              = core.PredictSingleR
	_ func(rx []float64, b float64) (reissue.SingleD, error)                                               = core.OptimalSingleD
	_ func(reissue.System, reissue.AdaptiveConfig) (reissue.AdaptiveResult, error)                         = core.AdaptiveOptimize
	_ func(reissue.System, reissue.BudgetSearchConfig) (reissue.BudgetSearchResult, error)                 = core.BudgetSearch
	_ func(reissue.System, reissue.SLAConfig) (reissue.SLAResult, error)                                   = core.MinimizeBudgetForSLA
	_ func(reissue.OnlineConfig) (*reissue.OnlineAdapter, error)                                           = core.NewOnlineAdapter
)

// TestAliasValueFlow exercises the identity at runtime once, in both
// directions: a policy built through the shim is planned by code that
// only knows the public type, and vice versa.
func TestAliasValueFlow(t *testing.T) {
	var viaCore core.SingleR = reissue.SingleR{D: 3, Q: 1}
	var viaPublic reissue.SingleR = viaCore
	rng := reissue.NewRNG(1)
	if got := viaPublic.Plan(rng); len(got) != 1 || got[0] != 3 {
		t.Fatalf("plan through the alias = %v, want [3]", got)
	}
	mr, err := core.DoubleR(1, 0.5, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var pub reissue.MultipleR = mr
	if len(pub.Delays) != 2 {
		t.Fatalf("DoubleR through the shim = %+v", pub)
	}
}
