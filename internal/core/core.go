package core
