// Package core is a thin compatibility shim over the public
// top-level reissue package, which is where the paper's policy
// families, optimizers, adaptive loops and budget searches now live.
// Every name here is a type alias or a forwarding variable, so values
// flow freely between old internal callers and the public API —
// core.SingleR and reissue.SingleR are the same type.
//
// Deprecated: import repro/reissue directly. The last internal
// importers were migrated off this shim; it survives only so stale
// branches keep compiling, and its compile-time alias test
// (core_test.go) is the one import left. reissue-vet's coreimport
// analyzer flags any new import of this package outside internal/core
// itself, and CI runs that check on every push.
package core

import "repro/reissue"

// Policy families (reissue/policy.go).
type (
	Policy    = reissue.Policy
	None      = reissue.None
	SingleR   = reissue.SingleR
	SingleD   = reissue.SingleD
	Immediate = reissue.Immediate
	MultipleR = reissue.MultipleR
)

var (
	NewMultipleR = reissue.NewMultipleR
	DoubleR      = reissue.DoubleR
)

// Data-driven optimizer (reissue/optimizer.go).
type Prediction = reissue.Prediction

var (
	ComputeOptimalSingleR           = reissue.ComputeOptimalSingleR
	ComputeOptimalSingleRCorrelated = reissue.ComputeOptimalSingleRCorrelated
	PredictSingleR                  = reissue.PredictSingleR
	OptimalSingleD                  = reissue.OptimalSingleD
)

// Systems and the adaptive loop (reissue/adaptive.go).
type (
	RunResult      = reissue.RunResult
	System         = reissue.System
	SystemFunc     = reissue.SystemFunc
	AdaptiveConfig = reissue.AdaptiveConfig
	AdaptiveTrial  = reissue.AdaptiveTrial
	AdaptiveResult = reissue.AdaptiveResult
)

var (
	AdaptiveOptimize        = reissue.AdaptiveOptimize
	AdaptiveOptimizeSingleD = reissue.AdaptiveOptimizeSingleD
)

// Analytic model (reissue/analytic.go).
var (
	SingleRSuccess         = reissue.SingleRSuccess
	SingleRBudget          = reissue.SingleRBudget
	SingleDSuccess         = reissue.SingleDSuccess
	SingleDBudget          = reissue.SingleDBudget
	MultipleRSuccess       = reissue.MultipleRSuccess
	MultipleRBudget        = reissue.MultipleRBudget
	TailLatency            = reissue.TailLatency
	OptimalSingleRAnalytic = reissue.OptimalSingleRAnalytic
)

// Budget selection (reissue/budget.go).
type (
	BudgetTrial        = reissue.BudgetTrial
	BudgetSearchConfig = reissue.BudgetSearchConfig
	BudgetSearchResult = reissue.BudgetSearchResult
	SLAConfig          = reissue.SLAConfig
	SLAResult          = reissue.SLAResult
)

var (
	BudgetSearch         = reissue.BudgetSearch
	MinimizeBudgetForSLA = reissue.MinimizeBudgetForSLA
)

// Online adaptation (reissue/online.go).
type (
	OnlineConfig  = reissue.OnlineConfig
	OnlineAdapter = reissue.OnlineAdapter
)

var NewOnlineAdapter = reissue.NewOnlineAdapter
