// Package rangequery provides the search-structure substrate the
// paper's optimizer relies on: a merge-sort tree for 2-D orthogonal
// range counting (used to estimate the conditional distribution
// Pr(Y <= t-d | X > t) in Section 4.2), a Fenwick tree for dynamic
// prefix counting, and monotone "finger" cursors over sorted samples
// that realize the amortized-O(1) DiscreteCDF evaluation the paper
// attributes to finger search trees.
package rangequery

import "fmt"

// Fenwick is a binary indexed tree over n integer-indexed slots
// supporting point updates and prefix-sum queries in O(log n).
type Fenwick struct {
	tree []int
}

// NewFenwick creates a Fenwick tree with n zero slots.
func NewFenwick(n int) *Fenwick {
	if n < 0 {
		panic(fmt.Sprintf("rangequery: NewFenwick(%d)", n))
	}
	return &Fenwick{tree: make([]int, n+1)}
}

// Len returns the number of slots.
func (f *Fenwick) Len() int { return len(f.tree) - 1 }

// Add adds delta to slot i (0-based). It panics if i is out of range.
func (f *Fenwick) Add(i, delta int) {
	if i < 0 || i >= f.Len() {
		panic(fmt.Sprintf("rangequery: Fenwick.Add(%d) with len %d", i, f.Len()))
	}
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// PrefixSum returns the sum of slots [0, i]. PrefixSum(-1) is 0.
func (f *Fenwick) PrefixSum(i int) int {
	if i >= f.Len() {
		i = f.Len() - 1
	}
	s := 0
	for i++; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// RangeSum returns the sum of slots [lo, hi] (inclusive); zero when
// the range is empty.
func (f *Fenwick) RangeSum(lo, hi int) int {
	if lo > hi {
		return 0
	}
	if lo < 0 {
		lo = 0
	}
	return f.PrefixSum(hi) - f.PrefixSum(lo-1)
}
