package rangequery

import (
	"math"
	"sort"
)

// Finger is a monotone cursor over a sorted sample slice that answers
// "how many samples are < t" (the paper's DiscreteCDF numerator) in
// amortized O(1) when consecutive queries move monotonically, and in
// O(log n) otherwise by falling back to binary search.
//
// The optimizer in ComputeOptimalSingleR evaluates the CDFs of RX and
// RY along query sequences that are monotone in t, d, and t-d, which
// is exactly the access pattern the paper's finger-search-tree claim
// exploits; a moving index over a sorted array achieves the same
// amortized bound with far smaller constants.
type Finger struct {
	sorted []float64
	pos    int // number of samples < last query value
	last   float64
	primed bool
}

// NewFinger creates a cursor over sorted (ascending) samples. The
// slice is not copied; the caller must not modify it. It panics if
// the input is unsorted, because every subsequent answer would be
// silently wrong.
func NewFinger(sorted []float64) *Finger {
	if !sort.Float64sAreSorted(sorted) {
		panic("rangequery: NewFinger with unsorted samples")
	}
	return &Finger{sorted: sorted}
}

// Len returns the number of samples.
func (f *Finger) Len() int { return len(f.sorted) }

// CountLess returns |{x : x < t}|, moving the finger from its previous
// position.
func (f *Finger) CountLess(t float64) int {
	n := len(f.sorted)
	if n == 0 {
		return 0
	}
	if !f.primed {
		f.pos = sort.SearchFloat64s(f.sorted, t)
		f.last, f.primed = t, true
		return f.pos
	}
	switch {
	case t > f.last:
		for f.pos < n && f.sorted[f.pos] < t {
			f.pos++
		}
	case t < f.last:
		for f.pos > 0 && f.sorted[f.pos-1] >= t {
			f.pos--
		}
	}
	f.last = t
	return f.pos
}

// CountLessEq returns |{x : x <= t}|. It reuses the finger by
// querying the smallest representable value above t.
func (f *Finger) CountLessEq(t float64) int {
	return f.CountLess(math.Nextafter(t, math.Inf(1)))
}

// CDF returns the empirical Pr(X < t) using the finger. An empty
// sample set yields 0.
func (f *Finger) CDF(t float64) float64 {
	if len(f.sorted) == 0 {
		return 0
	}
	return float64(f.CountLess(t)) / float64(len(f.sorted))
}

// Reset forgets the cursor position so the next query binary-searches
// from scratch. Use it between unrelated monotone sweeps.
func (f *Finger) Reset() { f.primed = false }
