package rangequery

import "sort"

// Point is a 2-D point. In the optimizer's use, X is a primary-request
// response time and Y is its paired reissue response time.
type Point struct {
	X, Y float64
}

// MergeTree is a static merge-sort tree over a set of 2-D points
// supporting orthogonal range counting in O(log^2 n) per query and
// O(n log n) construction. It answers the counting queries needed to
// estimate the conditional CDF Pr(Y <= y | X > x):
//
//	CountXGreater(x)            = |{(px, py) : px > x}|
//	CountXGreaterYLE(x, y)      = |{(px, py) : px > x, py <= y}|
//
// The structure is immutable after construction, matching the
// optimizer's read-only access pattern over a fixed response-time log.
type MergeTree struct {
	xs   []float64   // x-coordinates sorted ascending
	ys   [][]float64 // segment-tree nodes: sorted y values per node
	n    int
	size int
}

// NewMergeTree builds a merge tree from the given points. The input
// is copied.
func NewMergeTree(points []Point) *MergeTree {
	n := len(points)
	pts := make([]Point, n)
	copy(pts, points)
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })

	t := &MergeTree{n: n}
	t.xs = make([]float64, n)
	for i, p := range pts {
		t.xs[i] = p.X
	}
	if n == 0 {
		return t
	}
	size := 1
	for size < n {
		size *= 2
	}
	t.size = size
	t.ys = make([][]float64, 2*size)
	// Leaves.
	for i := 0; i < n; i++ {
		t.ys[size+i] = []float64{pts[i].Y}
	}
	for i := n; i < size; i++ {
		t.ys[size+i] = nil
	}
	// Internal nodes: merge children.
	for i := size - 1; i >= 1; i-- {
		t.ys[i] = mergeSorted(t.ys[2*i], t.ys[2*i+1])
	}
	return t
}

func mergeSorted(a, b []float64) []float64 {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make([]float64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Len returns the number of points.
func (t *MergeTree) Len() int { return t.n }

// CountXGreater returns the number of points with X strictly greater
// than x.
func (t *MergeTree) CountXGreater(x float64) int {
	return t.n - sort.Search(t.n, func(i int) bool { return t.xs[i] > x })
}

// CountXGreaterYLE returns the number of points with X > x and Y <= y.
func (t *MergeTree) CountXGreaterYLE(x, y float64) int {
	if t.n == 0 {
		return 0
	}
	lo := sort.Search(t.n, func(i int) bool { return t.xs[i] > x })
	return t.countYLEInRange(lo, t.n, y)
}

// countYLEInRange counts points with index in [lo, hi) whose Y <= y,
// walking the segment tree.
func (t *MergeTree) countYLEInRange(lo, hi int, y float64) int {
	count := 0
	lo += t.size
	hi += t.size
	for lo < hi {
		if lo&1 == 1 {
			count += countLE(t.ys[lo], y)
			lo++
		}
		if hi&1 == 1 {
			hi--
			count += countLE(t.ys[hi], y)
		}
		lo /= 2
		hi /= 2
	}
	return count
}

func countLE(sorted []float64, y float64) int {
	return sort.Search(len(sorted), func(i int) bool { return sorted[i] > y })
}

// CondYLEGivenXGreater estimates the conditional probability
// Pr(Y <= y | X > x). When no points satisfy X > x the conditional is
// undefined; we return fallback so the caller (the optimizer) can
// substitute the unconditional estimate.
func (t *MergeTree) CondYLEGivenXGreater(y, x, fallback float64) float64 {
	denom := t.CountXGreater(x)
	if denom == 0 {
		return fallback
	}
	return float64(t.CountXGreaterYLE(x, y)) / float64(denom)
}
