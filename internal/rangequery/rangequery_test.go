package rangequery

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestFenwickBasics(t *testing.T) {
	f := NewFenwick(10)
	if f.Len() != 10 {
		t.Fatalf("Len = %d", f.Len())
	}
	f.Add(0, 1)
	f.Add(4, 3)
	f.Add(9, 2)
	cases := []struct{ i, want int }{
		{-1, 0}, {0, 1}, {3, 1}, {4, 4}, {8, 4}, {9, 6}, {100, 6},
	}
	for _, c := range cases {
		if got := f.PrefixSum(c.i); got != c.want {
			t.Errorf("PrefixSum(%d) = %d, want %d", c.i, got, c.want)
		}
	}
	if got := f.RangeSum(1, 4); got != 3 {
		t.Errorf("RangeSum(1,4) = %d, want 3", got)
	}
	if got := f.RangeSum(5, 3); got != 0 {
		t.Errorf("empty RangeSum = %d", got)
	}
	if got := f.RangeSum(-5, 0); got != 1 {
		t.Errorf("clamped RangeSum = %d, want 1", got)
	}
}

func TestFenwickNegativeDeltas(t *testing.T) {
	f := NewFenwick(5)
	f.Add(2, 10)
	f.Add(2, -4)
	if got := f.PrefixSum(4); got != 6 {
		t.Fatalf("sum after negative delta = %d", got)
	}
}

func TestFenwickOutOfRangePanics(t *testing.T) {
	f := NewFenwick(3)
	for _, i := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d) did not panic", i)
				}
			}()
			f.Add(i, 1)
		}()
	}
}

// Property: Fenwick prefix sums match a brute-force array.
func TestFenwickProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 32
		fw := NewFenwick(n)
		ref := make([]int, n)
		for _, op := range ops {
			i := int(op) % n
			delta := int(op>>8)%7 - 3
			fw.Add(i, delta)
			ref[i] += delta
		}
		sum := 0
		for i := 0; i < n; i++ {
			sum += ref[i]
			if fw.PrefixSum(i) != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func bruteCount(pts []Point, x, y float64) (gt, gtYle int) {
	for _, p := range pts {
		if p.X > x {
			gt++
			if p.Y <= y {
				gtYle++
			}
		}
	}
	return
}

func TestMergeTreeSmall(t *testing.T) {
	pts := []Point{{1, 10}, {2, 20}, {3, 5}, {4, 15}, {5, 25}}
	mt := NewMergeTree(pts)
	if mt.Len() != 5 {
		t.Fatalf("Len = %d", mt.Len())
	}
	cases := []struct {
		x, y         float64
		wantGt, want int
	}{
		{0, 100, 5, 5},
		{2, 15, 3, 2},  // points with X>2: (3,5),(4,15),(5,25); Y<=15: two
		{3, 10, 2, 0},  // (4,15),(5,25); none <= 10
		{5, 100, 0, 0}, // nothing beyond x=5
		{2.5, 5, 3, 1},
	}
	for _, c := range cases {
		if got := mt.CountXGreater(c.x); got != c.wantGt {
			t.Errorf("CountXGreater(%v) = %d, want %d", c.x, got, c.wantGt)
		}
		if got := mt.CountXGreaterYLE(c.x, c.y); got != c.want {
			t.Errorf("CountXGreaterYLE(%v,%v) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestMergeTreeEmpty(t *testing.T) {
	mt := NewMergeTree(nil)
	if mt.CountXGreater(0) != 0 || mt.CountXGreaterYLE(0, 0) != 0 {
		t.Fatal("empty tree returned nonzero counts")
	}
	if got := mt.CondYLEGivenXGreater(1, 1, 0.42); got != 0.42 {
		t.Fatalf("fallback = %v", got)
	}
}

func TestMergeTreeDuplicateCoordinates(t *testing.T) {
	pts := []Point{{1, 1}, {1, 2}, {1, 3}, {2, 2}, {2, 2}}
	mt := NewMergeTree(pts)
	if got := mt.CountXGreaterYLE(1, 2); got != 2 {
		t.Fatalf("dup coords: got %d, want 2", got)
	}
	if got := mt.CountXGreater(0.999); got != 5 {
		t.Fatalf("CountXGreater = %d", got)
	}
}

func TestCondYLEGivenXGreater(t *testing.T) {
	pts := []Point{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	mt := NewMergeTree(pts)
	// X > 2 leaves {(3,3),(4,4)}; Y <= 3 matches one of two.
	if got := mt.CondYLEGivenXGreater(3, 2, 0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("conditional = %v, want 0.5", got)
	}
	// X > 4 leaves nothing: fallback.
	if got := mt.CondYLEGivenXGreater(3, 4, 0.9); got != 0.9 {
		t.Fatalf("fallback = %v", got)
	}
}

// Property: merge-tree counts equal brute force on random point sets.
func TestMergeTreeProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		r := stats.NewRNG(seed)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: r.Float64() * 100, Y: r.Float64() * 100}
		}
		mt := NewMergeTree(pts)
		for trial := 0; trial < 20; trial++ {
			x := r.Float64() * 110
			y := r.Float64() * 110
			gt, gtYle := bruteCount(pts, x, y)
			if mt.CountXGreater(x) != gt || mt.CountXGreaterYLE(x, y) != gtYle {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFingerMatchesBinarySearch(t *testing.T) {
	xs := []float64{1, 2, 2, 3, 5, 8, 13}
	fg := NewFinger(xs)
	// Ascending sweep.
	for _, q := range []float64{0, 1, 1.5, 2, 2.5, 3, 9, 20} {
		want := sort.SearchFloat64s(xs, q)
		if got := fg.CountLess(q); got != want {
			t.Errorf("asc CountLess(%v) = %d, want %d", q, got, want)
		}
	}
	// Descending sweep on the same finger.
	for _, q := range []float64{20, 9, 3, 2.5, 2, 1.5, 1, 0} {
		want := sort.SearchFloat64s(xs, q)
		if got := fg.CountLess(q); got != want {
			t.Errorf("desc CountLess(%v) = %d, want %d", q, got, want)
		}
	}
}

func TestFingerCDF(t *testing.T) {
	fg := NewFinger([]float64{1, 2, 3, 4})
	if got := fg.CDF(3); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("CDF(3) = %v, want 0.5", got)
	}
	fg.Reset()
	if got := fg.CDF(0.5); got != 0 {
		t.Fatalf("CDF(0.5) = %v", got)
	}
}

func TestFingerEmpty(t *testing.T) {
	fg := NewFinger(nil)
	if fg.CountLess(5) != 0 || fg.CDF(5) != 0 {
		t.Fatal("empty finger returned nonzero")
	}
}

func TestFingerUnsortedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted finger did not panic")
		}
	}()
	NewFinger([]float64{3, 1})
}

// Property: finger cursor agrees with binary search under arbitrary
// (non-monotone) query sequences.
func TestFingerProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 100)
		r := stats.NewRNG(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 50
		}
		sort.Float64s(xs)
		fg := NewFinger(xs)
		for trial := 0; trial < 50; trial++ {
			q := r.Float64()*60 - 5
			if fg.CountLess(q) != sort.SearchFloat64s(xs, q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMergeTreeBuild(b *testing.B) {
	r := stats.NewRNG(1)
	pts := make([]Point, 10000)
	for i := range pts {
		pts[i] = Point{X: r.Float64(), Y: r.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewMergeTree(pts)
	}
}

func BenchmarkMergeTreeQuery(b *testing.B) {
	r := stats.NewRNG(1)
	pts := make([]Point, 10000)
	for i := range pts {
		pts[i] = Point{X: r.Float64(), Y: r.Float64()}
	}
	mt := NewMergeTree(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mt.CountXGreaterYLE(0.5, 0.5)
	}
}

func BenchmarkFingerMonotoneSweep(b *testing.B) {
	r := stats.NewRNG(1)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	sort.Float64s(xs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fg := NewFinger(xs)
		for q := 0.0; q < 1.0; q += 0.0001 {
			fg.CountLess(q)
		}
	}
}
