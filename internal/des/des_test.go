package des

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var order []float64
	for _, tm := range []float64{5, 1, 3, 2, 4} {
		tm := tm
		s.At(tm, func(now float64) { order = append(order, now) })
	}
	s.Run()
	want := []float64{1, 2, 3, 4, 5}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
	if s.Now() != 5 {
		t.Fatalf("final time = %v", s.Now())
	}
	if s.Fired() != 5 {
		t.Fatalf("fired = %d", s.Fired())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(7, func(float64) { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	s := New()
	var at float64
	s.At(10, func(now float64) {
		s.After(5, func(now2 float64) { at = now2 })
	})
	s.Run()
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	h := s.At(1, func(float64) { fired = true })
	h.Cancel()
	if !h.Cancelled() {
		t.Fatal("handle not marked cancelled")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	s := New()
	fired := false
	h := s.At(5, func(float64) { fired = true })
	s.At(1, func(float64) { h.Cancel() })
	s.Run()
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(float64(i), func(float64) { count++ })
	}
	s.RunUntil(5.5)
	if count != 5 {
		t.Fatalf("fired %d events, want 5", count)
	}
	if s.Now() != 5.5 {
		t.Fatalf("Now = %v, want 5.5", s.Now())
	}
	if s.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", s.Pending())
	}
	s.Run()
	if count != 10 {
		t.Fatalf("after Run, fired %d", count)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunUntil(42)
	if s.Now() != 42 {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestRunWhile(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 100; i++ {
		s.At(float64(i), func(float64) { count++ })
	}
	s.RunWhile(func() bool { return count < 10 })
	if count != 10 {
		t.Fatalf("RunWhile stopped at %d", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.At(10, func(float64) {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(5, func(float64) {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.After(-1, func(float64) {})
}

func TestCascadingEvents(t *testing.T) {
	// An arrival process: each event schedules the next, up to n.
	s := New()
	const n = 1000
	count := 0
	var arrive func(now float64)
	arrive = func(now float64) {
		count++
		if count < n {
			s.After(1, arrive)
		}
	}
	s.At(0, arrive)
	s.Run()
	if count != n {
		t.Fatalf("count = %d", count)
	}
	if s.Now() != n-1 {
		t.Fatalf("final time = %v", s.Now())
	}
}

// Property: events always fire in non-decreasing time order, for
// arbitrary schedules including duplicates.
func TestOrderProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		r := stats.NewRNG(seed)
		s := New()
		var times []float64
		for i := 0; i < n; i++ {
			tm := float64(r.Intn(20))
			s.At(tm, func(now float64) { times = append(times, now) })
		}
		s.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset fires exactly the complement.
func TestCancelProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		r := stats.NewRNG(seed)
		s := New()
		fired := make([]bool, n)
		handles := make([]Handle, n)
		for i := 0; i < n; i++ {
			i := i
			handles[i] = s.At(float64(r.Intn(10)), func(float64) { fired[i] = true })
		}
		cancelled := make([]bool, n)
		for i := 0; i < n; i++ {
			if r.Bool(0.5) {
				handles[i].Cancel()
				cancelled[i] = true
			}
		}
		s.Run()
		for i := 0; i < n; i++ {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		r := stats.NewRNG(uint64(i))
		for j := 0; j < 10000; j++ {
			s.At(r.Float64()*1000, func(float64) {})
		}
		s.Run()
	}
}
