package des

import (
	"testing"

	"repro/internal/stats"
)

// Cancelling a handle after its event fired must be a no-op even when
// the slot has been recycled for a different event: the generation
// check keeps the stale handle from killing the new tenant.
func TestCancelAfterFireIsNoOp(t *testing.T) {
	s := New()
	h1 := s.At(1, func(float64) {})
	s.Run()
	if h1.Cancelled() {
		t.Fatal("fired event reports cancelled")
	}
	// The freed slot is reused for the next event.
	fired := false
	h2 := s.At(2, func(float64) { fired = true })
	if h2.slot != h1.slot {
		t.Fatalf("slot not recycled: first %d, second %d", h1.slot, h2.slot)
	}
	h1.Cancel() // stale generation: must not touch the new event
	if h2.Cancelled() {
		t.Fatal("stale Cancel leaked onto the recycled slot")
	}
	s.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

// A cancelled event's slot is reclaimed lazily; once reclaimed, the
// old handle is stale on the recycled slot too.
func TestGenerationGuardsRecycledCancelledSlot(t *testing.T) {
	s := New()
	h1 := s.At(1, func(float64) { t.Fatal("cancelled event fired") })
	h1.Cancel()
	if !h1.Cancelled() {
		t.Fatal("not cancelled before reclamation")
	}
	s.Run() // reclaims the dead record
	if h1.Cancelled() {
		t.Fatal("handle still reports cancelled after slot reclamation")
	}
	fired := false
	h2 := s.At(1, func(float64) { fired = true })
	if h2.slot != h1.slot {
		t.Fatalf("slot not recycled: first %d, second %d", h1.slot, h2.slot)
	}
	h1.Cancel()
	s.Run()
	if !fired {
		t.Fatal("stale Cancel killed the recycled slot's event")
	}
}

// Events at the same instant fire in scheduling order regardless of
// how they were scheduled (At vs AtArg) and of heap layout.
func TestSameInstantOrderingMixedKinds(t *testing.T) {
	s := New()
	var order []int
	record := func(_ float64, arg int, _ float64) { order = append(order, arg) }
	const n = 100
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			s.AtArg(5, record, i, 0)
		} else {
			i := i
			s.At(5, func(float64) { order = append(order, i) })
		}
	}
	// Interleave an earlier and a later event so the same-instant run
	// is framed by other heap traffic.
	s.At(1, func(float64) {})
	s.At(9, func(float64) {})
	s.Run()
	if len(order) != n {
		t.Fatalf("fired %d of %d same-instant events", len(order), n)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant order diverged at %d: %v...", i, order[:i+1])
		}
	}
}

// AtArg payloads are delivered with the event.
func TestAtArgPayload(t *testing.T) {
	s := New()
	type rec struct {
		now float64
		arg int
		x   float64
	}
	var got []rec
	cb := func(now float64, arg int, x float64) { got = append(got, rec{now, arg, x}) }
	s.AtArg(2, cb, 7, 3.5)
	s.AfterArg(1, cb, 9, -1)
	s.Run()
	want := []rec{{1, 9, -1}, {2, 7, 3.5}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("payload %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// Reset invalidates outstanding handles: a pre-Reset handle must not
// cancel the event that now occupies its slot.
func TestResetInvalidatesHandles(t *testing.T) {
	s := New()
	h := s.At(1, func(float64) {})
	s.Reset()
	if s.Pending() != 0 || s.Now() != 0 || s.Fired() != 0 {
		t.Fatalf("Reset left state: pending=%d now=%v fired=%d", s.Pending(), s.Now(), s.Fired())
	}
	fired := false
	s.At(1, func(float64) { fired = true })
	h.Cancel()
	s.Run()
	if !fired {
		t.Fatal("pre-Reset handle cancelled a post-Reset event")
	}
}

// Reset preserves capacity: a warmed Sim schedules and fires without
// allocating. The budget of 1 covers the event payload; in steady
// state the engine itself allocates nothing.
func TestScheduleFireAllocFree(t *testing.T) {
	s := New()
	cb := func(now float64, arg int, x float64) {}
	warm := func() {
		s.Reset()
		for i := 0; i < 512; i++ {
			s.AtArg(float64(i%17), cb, i, 0)
		}
		s.Run()
	}
	warm() // grow slab, heap, free list
	avg := testing.AllocsPerRun(20, warm)
	// 512 schedule+fire cycles per run: ≤1 total alloc per run is far
	// under the ≤1-per-cycle acceptance bar, and catches any per-event
	// allocation creeping back in.
	if avg > 1 {
		t.Fatalf("warmed schedule+fire allocated %.1f allocs per 512-event run, want ≤1", avg)
	}
}

// The slab engine must still interleave fresh scheduling from inside
// callbacks with pending cancelled records (regression guard for slot
// recycling during Step's lazy-drop loop).
func TestRecycleDuringRun(t *testing.T) {
	s := New()
	r := stats.NewRNG(42)
	count := 0
	var spawn func(now float64)
	spawn = func(now float64) {
		count++
		if count < 1000 {
			h := s.After(r.Float64(), func(float64) { t.Fatal("cancelled child fired") })
			h.Cancel()
			s.After(r.Float64(), spawn)
		}
	}
	s.At(0, spawn)
	s.Run()
	if count != 1000 {
		t.Fatalf("count = %d", count)
	}
}

// Lane events interleave with heap events under the global
// (time, seq) order: a laned arrival stream and heap-scheduled events
// at overlapping times must fire exactly as if all were heap events.
func TestMonotoneLaneInterleavesWithHeap(t *testing.T) {
	s := New()
	var order []int
	rec := func(_ float64, arg int, _ float64) { order = append(order, arg) }
	// Lane: times 1, 3, 3, 5 (seqs 0-3). Heap: 2, 3, 5 (seqs 4-6).
	s.AtMonotone(1, rec, 0, 0)
	s.AtMonotone(3, rec, 1, 0)
	s.AtMonotone(3, rec, 2, 0)
	s.AtMonotone(5, rec, 3, 0)
	s.AtArg(2, rec, 4, 0)
	s.AtArg(3, rec, 5, 0)
	s.AtArg(5, rec, 6, 0)
	s.Run()
	// Global (time, seq): (1,0) (2,4) (3,1) (3,2) (3,5) (5,3) (5,6).
	want := []int{0, 4, 1, 2, 5, 3, 6}
	if len(order) != len(want) {
		t.Fatalf("fired %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("merge order = %v, want %v", order, want)
		}
	}
}

// Lane events are cancellable like any other.
func TestMonotoneLaneCancel(t *testing.T) {
	s := New()
	fired := 0
	rec := func(_ float64, _ int, _ float64) { fired++ }
	s.AtMonotone(1, rec, 0, 0)
	h := s.AtMonotone(2, rec, 1, 0)
	s.AtMonotone(3, rec, 2, 0)
	h.Cancel()
	if s.Pending() != 3 {
		t.Fatalf("pending = %d, want 3 (lazy cancel)", s.Pending())
	}
	s.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestMonotoneLaneRejectsOutOfOrder(t *testing.T) {
	s := New()
	s.AtMonotone(5, func(float64, int, float64) {}, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order AtMonotone did not panic")
		}
	}()
	s.AtMonotone(4, func(float64, int, float64) {}, 1, 0)
}

func BenchmarkScheduleFireReused(b *testing.B) {
	s := New()
	cb := func(now float64, arg int, x float64) {}
	run := func(seed uint64) {
		s.Reset()
		r := stats.NewRNG(seed)
		for j := 0; j < 10000; j++ {
			s.AtArg(r.Float64()*1000, cb, j, 0)
		}
		s.Run()
	}
	run(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(uint64(i))
	}
}
