// Package des implements a small deterministic discrete-event
// simulation engine: a future-event list ordered by (time, sequence)
// and a simulation clock. The cluster simulator in internal/cluster
// is built on top of it.
//
// Determinism matters here: two events scheduled for the same instant
// fire in scheduling order, so a simulation driven by a seeded RNG
// replays identically on every run.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a callback scheduled to run at a simulation time.
type Event func(now float64)

type scheduled struct {
	time  float64
	seq   uint64
	fn    Event
	index int // heap index, maintained by the heap interface
	dead  bool
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ s *scheduled }

// Cancel prevents the event from firing. Cancelling an already-fired
// or already-cancelled event is a no-op. Cancelled events are dropped
// lazily when they surface at the top of the event list.
func (h Handle) Cancel() {
	if h.s != nil {
		h.s.dead = true
	}
}

// Cancelled reports whether the event was cancelled before firing.
func (h Handle) Cancelled() bool { return h.s != nil && h.s.dead }

type eventHeap []*scheduled

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	s := x.(*scheduled)
	s.index = len(*h)
	*h = append(*h, s)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return s
}

// Sim is a discrete-event simulation instance. The zero value is not
// usable; call New.
type Sim struct {
	now    float64
	seq    uint64
	events eventHeap
	fired  uint64
}

// New creates an empty simulation whose clock starts at 0.
func New() *Sim { return &Sim{} }

// Now returns the current simulation time.
func (s *Sim) Now() float64 { return s.now }

// Fired returns the number of events executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Pending returns the number of events still scheduled (including
// lazily-cancelled ones not yet dropped).
func (s *Sim) Pending() int { return len(s.events) }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it is always a logic error in the calling model.
func (s *Sim) At(t float64, fn Event) Handle {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) {
		panic("des: scheduling at NaN")
	}
	ev := &scheduled{time: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return Handle{s: ev}
}

// After schedules fn to run delay time units from now.
func (s *Sim) After(delay float64, fn Event) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v", delay))
	}
	return s.At(s.now+delay, fn)
}

// Step fires the next pending event, advancing the clock. It returns
// false when no events remain.
func (s *Sim) Step() bool {
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*scheduled)
		if ev.dead {
			continue
		}
		s.now = ev.time
		s.fired++
		ev.fn(s.now)
		return true
	}
	return false
}

// Run fires events until the event list drains.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with time <= tEnd, then advances the clock to
// tEnd. Events scheduled beyond tEnd remain pending.
func (s *Sim) RunUntil(tEnd float64) {
	for len(s.events) > 0 {
		ev := s.events[0]
		if ev.dead {
			heap.Pop(&s.events)
			continue
		}
		if ev.time > tEnd {
			break
		}
		heap.Pop(&s.events)
		s.now = ev.time
		s.fired++
		ev.fn(s.now)
	}
	if s.now < tEnd {
		s.now = tEnd
	}
}

// RunWhile fires events while cond() holds and events remain.
func (s *Sim) RunWhile(cond func() bool) {
	for cond() && s.Step() {
	}
}
