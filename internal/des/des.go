// Package des implements a small deterministic discrete-event
// simulation engine: a future-event list ordered by (time, sequence)
// and a simulation clock. The cluster simulator in internal/cluster
// is built on top of it.
//
// Determinism matters here: two events scheduled for the same instant
// fire in scheduling order, so a simulation driven by a seeded RNG
// replays identically on every run. The engine totally orders events
// by (time, seq) — seq is a per-Sim scheduling counter, so the order
// is unique and independent of the event list's internal layout.
//
// The event list is built for throughput on the simulator's hot path:
// a 4-ary heap of (time, seq, slot) keys over a pooled slab of typed
// event records. Scheduling an event costs no allocation once the
// slab and heap have grown to the simulation's peak pending count,
// and a Sim can be Reset and reused across runs so repeated
// simulations (the adaptive optimizer's trials, figure regeneration)
// run allocation-free in steady state. Handles are generation-counted
// slab references, so cancelling an already-fired event — whose slot
// may since have been reused — is a safe no-op.
package des

import (
	"fmt"
	"math"
)

// Event is a callback scheduled to run at a simulation time.
type Event func(now float64)

// ArgEvent is a payload-carrying event callback: one shared func
// value can serve many scheduled events, with the per-event payload
// (arg, x) stored in the event record instead of a captured closure
// environment. This is what keeps the cluster simulator's hot path
// allocation-free: its arrival, reissue, and service-completion
// events are three func values reused for every query.
type ArgEvent func(now float64, arg int, x float64)

// slot is one pooled event record. Exactly one of fn and afn is set
// while the slot is live; gen counts reuses so stale Handles cannot
// touch a recycled slot.
type slot struct {
	fn   Event
	afn  ArgEvent
	arg  int
	x    float64
	gen  uint32
	dead bool
}

// entry is one heap element. The ordering key (time, seq) is stored
// inline so sift operations never chase the slab.
type entry struct {
	time float64
	seq  uint64
	slot int32
}

// Handle identifies a scheduled event so it can be cancelled. The
// zero Handle is valid and refers to no event.
type Handle struct {
	s    *Sim
	slot int32
	gen  uint32
}

// Cancel prevents the event from firing. Cancelling an already-fired
// or already-cancelled event is a no-op (the handle's generation no
// longer matches the slot once the event fires). Cancelled events are
// dropped lazily when they surface at the top of the event list.
func (h Handle) Cancel() {
	if h.s == nil {
		return
	}
	sl := &h.s.slab[h.slot]
	if sl.gen == h.gen {
		sl.dead = true
	}
}

// Cancelled reports whether the event was cancelled before firing.
// Once the engine reclaims the cancelled record (lazily, when it
// surfaces at the head of the event list) the handle goes stale and
// Cancelled returns false again; use it for asserting on a
// cancellation that just happened, not as long-term state.
func (h Handle) Cancelled() bool {
	if h.s == nil {
		return false
	}
	sl := &h.s.slab[h.slot]
	return sl.gen == h.gen && sl.dead
}

// Sim is a discrete-event simulation instance. The zero value is not
// usable; call New.
type Sim struct {
	now   float64
	seq   uint64
	fired uint64
	heap  []entry // 4-ary min-heap ordered by (time, seq)
	slab  []slot  // pooled event records
	free  []int32 // free slab indices

	// lane is the monotone fast path: a FIFO of events whose times
	// were scheduled in non-decreasing order (an open-loop arrival
	// process, a precomputed trace). Because both time and seq are
	// non-decreasing along the lane, its head is always its minimum,
	// so scheduling and popping cost O(1) instead of a heap
	// operation — and keeping bulk-scheduled arrivals out of the
	// heap keeps the heap shallow for everything else. Step/Run
	// merge the lane head with the heap top under the same global
	// (time, seq) order, so firing order is identical to scheduling
	// everything on the heap.
	lane     []entry
	laneHead int
}

// New creates an empty simulation whose clock starts at 0.
func New() *Sim { return &Sim{} }

// Reset rewinds the clock to 0, drops all pending events, and
// invalidates every outstanding Handle, keeping the slab and heap
// capacity so the next run schedules without allocating. It is how
// callers running many simulations back to back (the adaptive
// optimizer, figure regeneration) amortize the event list to zero
// steady-state allocations.
func (s *Sim) Reset() {
	s.now, s.seq, s.fired = 0, 0, 0
	s.heap = s.heap[:0]
	s.lane = s.lane[:0]
	s.laneHead = 0
	s.free = s.free[:0]
	for i := range s.slab {
		sl := &s.slab[i]
		sl.gen++ // invalidate pre-Reset handles
		sl.fn = nil
		sl.afn = nil
		sl.dead = false
	}
	for i := len(s.slab) - 1; i >= 0; i-- {
		s.free = append(s.free, int32(i))
	}
}

// Now returns the current simulation time.
func (s *Sim) Now() float64 { return s.now }

// Fired returns the number of events executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Pending returns the number of events still scheduled (including
// lazily-cancelled ones not yet dropped).
func (s *Sim) Pending() int { return len(s.heap) + len(s.lane) - s.laneHead }

func (s *Sim) checkTime(t float64) {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) {
		panic("des: scheduling at NaN")
	}
}

// alloc grabs a free slab slot, growing the slab only when the free
// list is empty.
func (s *Sim) alloc() int32 {
	if n := len(s.free); n > 0 {
		idx := s.free[n-1]
		s.free = s.free[:n-1]
		return idx
	}
	s.slab = append(s.slab, slot{})
	return int32(len(s.slab) - 1)
}

// release recycles a fired or cancelled slot: bump the generation so
// outstanding handles go stale, drop callback references so closures
// become collectable, and return the slot to the free list.
func (s *Sim) release(idx int32) {
	sl := &s.slab[idx]
	sl.gen++
	sl.fn = nil
	sl.afn = nil
	sl.dead = false
	s.free = append(s.free, idx)
}

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it is always a logic error in the calling model.
func (s *Sim) At(t float64, fn Event) Handle {
	s.checkTime(t)
	idx := s.alloc()
	sl := &s.slab[idx]
	sl.fn = fn
	h := Handle{s: s, slot: idx, gen: sl.gen}
	s.push(entry{time: t, seq: s.seq, slot: idx})
	s.seq++
	return h
}

// AtArg schedules fn to run at absolute time t with the given
// payload. The func value is typically shared across many events, so
// — unlike a capturing closure passed to At — scheduling allocates
// nothing beyond the pooled event record.
func (s *Sim) AtArg(t float64, fn ArgEvent, arg int, x float64) Handle {
	s.checkTime(t)
	idx := s.alloc()
	sl := &s.slab[idx]
	sl.afn = fn
	sl.arg = arg
	sl.x = x
	h := Handle{s: s, slot: idx, gen: sl.gen}
	s.push(entry{time: t, seq: s.seq, slot: idx})
	s.seq++
	return h
}

// AtMonotone schedules a payload-carrying event on the monotone lane:
// a FIFO reserved for event streams whose times arrive in
// non-decreasing order, which schedule and fire in O(1) instead of
// O(log pending). It panics if t is smaller than the previously
// laned time — callers must only route genuinely sorted streams
// (open-loop arrivals, trace replays) here. Relative firing order
// against heap-scheduled events is exactly as if At had been used.
func (s *Sim) AtMonotone(t float64, fn ArgEvent, arg int, x float64) Handle {
	s.checkTime(t)
	if n := len(s.lane); n > s.laneHead && t < s.lane[n-1].time {
		panic(fmt.Sprintf("des: AtMonotone time %v before laned %v", t, s.lane[n-1].time))
	}
	idx := s.alloc()
	sl := &s.slab[idx]
	sl.afn = fn
	sl.arg = arg
	sl.x = x
	h := Handle{s: s, slot: idx, gen: sl.gen}
	s.lane = append(s.lane, entry{time: t, seq: s.seq, slot: idx})
	s.seq++
	return h
}

// peek returns the globally (time, seq)-minimal pending entry and
// whether it came from the lane, without removing it. Pending must be
// non-zero for at least one of the sources.
func (s *Sim) peek() (e entry, fromLane, ok bool) {
	hasHeap := len(s.heap) > 0
	hasLane := s.laneHead < len(s.lane)
	switch {
	case !hasHeap && !hasLane:
		return entry{}, false, false
	case hasLane && (!hasHeap || entryLess(s.lane[s.laneHead], s.heap[0])):
		return s.lane[s.laneHead], true, true
	default:
		return s.heap[0], false, true
	}
}

// take removes the entry peek returned.
func (s *Sim) take(fromLane bool) {
	if fromLane {
		s.laneHead++
		if s.laneHead == len(s.lane) {
			s.lane = s.lane[:0]
			s.laneHead = 0
		}
		return
	}
	s.popMin()
}

// After schedules fn to run delay time units from now.
func (s *Sim) After(delay float64, fn Event) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v", delay))
	}
	return s.At(s.now+delay, fn)
}

// AfterArg schedules a payload-carrying event delay time units from
// now.
func (s *Sim) AfterArg(delay float64, fn ArgEvent, arg int, x float64) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v", delay))
	}
	return s.AtArg(s.now+delay, fn, arg, x)
}

// 4-ary heap over (time, seq). Flatter than a binary heap, it halves
// the sift-down depth and keeps the four children of a node in one or
// two cache lines — the classic d-ary trade of more comparisons per
// level for fewer levels, which wins when pops dominate (every
// scheduled event is popped exactly once).

func entryLess(a, b entry) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (s *Sim) push(e entry) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !entryLess(e, s.heap[parent]) {
			break
		}
		s.heap[i] = s.heap[parent]
		i = parent
	}
	s.heap[i] = e
}

// popMin removes and returns the (time, seq)-minimal entry. The heap
// must be non-empty.
func (s *Sim) popMin() entry {
	h := s.heap
	min := h[0]
	n := len(h) - 1
	e := h[n]
	s.heap = h[:n]
	if n == 0 {
		return min
	}
	// Sift the former last element down from the root.
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		least := c
		for j := c + 1; j < end; j++ {
			if entryLess(h[j], h[least]) {
				least = j
			}
		}
		if !entryLess(h[least], e) {
			break
		}
		h[i] = h[least]
		i = least
	}
	h[i] = e
	return min
}

// fire executes the event in the given slot at time t, releasing the
// slot before the callback runs so the callback can schedule new
// events into it.
func (s *Sim) fire(e entry) {
	sl := &s.slab[e.slot]
	fn, afn, arg, x := sl.fn, sl.afn, sl.arg, sl.x
	s.release(e.slot)
	s.now = e.time
	s.fired++
	if afn != nil {
		afn(s.now, arg, x)
	} else {
		fn(s.now)
	}
}

// Step fires the next pending event, advancing the clock. It returns
// false when no events remain.
func (s *Sim) Step() bool {
	for {
		e, fromLane, ok := s.peek()
		if !ok {
			return false
		}
		s.take(fromLane)
		if s.slab[e.slot].dead {
			s.release(e.slot)
			continue
		}
		s.fire(e)
		return true
	}
}

// Run fires events until the event list drains.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with time <= tEnd, then advances the clock to
// tEnd. Events scheduled beyond tEnd remain pending.
func (s *Sim) RunUntil(tEnd float64) {
	for {
		e, fromLane, ok := s.peek()
		if !ok {
			break
		}
		if s.slab[e.slot].dead {
			s.take(fromLane)
			s.release(e.slot)
			continue
		}
		if e.time > tEnd {
			break
		}
		s.take(fromLane)
		s.fire(e)
	}
	if s.now < tEnd {
		s.now = tEnd
	}
}

// RunWhile fires events while cond() holds and events remain.
func (s *Sim) RunWhile(cond func() bool) {
	for cond() && s.Step() {
	}
}
