package kvstore

import (
	"testing"
)

func genSmall(t *testing.T) *Workload {
	t.Helper()
	w, err := GenerateWorkload(WorkloadConfig{NumSets: 60, NumQueries: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPartitionValidation(t *testing.T) {
	w := genSmall(t)
	if _, err := w.Partition(0); err == nil {
		t.Error("Partition accepted zero shards")
	}
	empty := &Workload{Store: NewStore()}
	if _, err := empty.Partition(2); err == nil {
		t.Error("Partition accepted an empty workload")
	}
}

// TestPartitionPreservesAnswers checks the semantic contract: the
// per-shard intersections are disjoint, their union is the full
// intersection, and every shard slice stays sorted.
func TestPartitionPreservesAnswers(t *testing.T) {
	w := genSmall(t)
	const shards = 3
	parts, err := w.Partition(shards)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range w.Store.Keys() {
		total := 0
		for s := 0; s < shards; s++ {
			set := parts[s].Store.sets[key]
			total += len(set)
			for i := 1; i < len(set); i++ {
				if set[i-1] >= set[i] {
					t.Fatalf("shard %d slice of %s not sorted-unique at %d", s, key, i)
				}
			}
			for _, v := range set {
				if int(uint32(v)%shards) != s {
					t.Fatalf("member %d of %s landed on shard %d", v, key, s)
				}
			}
		}
		if total != w.Store.SCard(key) {
			t.Fatalf("%s: shard slices hold %d members, store has %d", key, total, w.Store.SCard(key))
		}
	}
	for i, q := range w.Queries[:50] {
		full, _ := w.Store.SInter(q.A, q.B)
		merged := 0
		for s := 0; s < shards; s++ {
			part, _ := parts[s].Store.SInter(q.A, q.B)
			merged += len(part)
		}
		if merged != len(full) {
			t.Fatalf("query %d: merged cardinality %d != full %d", i, merged, len(full))
		}
	}
}

// TestPartitionCalibratesTimes checks the per-shard service times:
// every sub-query pays at least the base cost, and the summed
// variable cost across shards stays close to the unsharded query's
// (each element is scanned on exactly one shard; only merge-pointer
// bookkeeping differs).
func TestPartitionCalibratesTimes(t *testing.T) {
	w := genSmall(t)
	const shards = 4
	parts, err := w.Partition(shards)
	if err != nil {
		t.Fatal(err)
	}
	for s := range parts {
		if len(parts[s].Times) != len(w.Times) {
			t.Fatalf("shard %d has %d times, want %d", s, len(parts[s].Times), len(w.Times))
		}
	}
	var fullVar, shardVar float64
	for i := range w.Times {
		fullVar += w.Times[i] - w.Cost.BaseMS
		for s := range parts {
			ts := parts[s].Times[i]
			if ts < w.Cost.BaseMS {
				t.Fatalf("shard %d query %d time %v below base cost", s, i, ts)
			}
			shardVar += ts - w.Cost.BaseMS
		}
	}
	if shardVar < 0.9*fullVar || shardVar > 1.1*fullVar {
		t.Fatalf("summed per-shard variable cost %v far from full %v", shardVar, fullVar)
	}
}
