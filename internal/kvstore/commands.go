package kvstore

import "repro/internal/stats"

// This file implements the remaining set commands a Redis-style
// workload exercises, all with work accounting so they can drive the
// simulator's cost model like SInter does.

// SUnion computes the union of the sets at keys a and b with a linear
// merge, returning the result and the work done.
func (s *Store) SUnion(a, b string) (Set, Work) {
	sa, sb := s.sets[a], s.sets[b]
	out := make(Set, 0, len(sa)+len(sb))
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		switch {
		case sa[i] < sb[j]:
			out = append(out, sa[i])
			i++
		case sa[i] > sb[j]:
			out = append(out, sb[j])
			j++
		default:
			out = append(out, sa[i])
			i++
			j++
		}
	}
	out = append(out, sa[i:]...)
	out = append(out, sb[j:]...)
	return out, Work{Scanned: len(sa) + len(sb) + len(out)}
}

// SDiff computes the elements of a not present in b.
func (s *Store) SDiff(a, b string) (Set, Work) {
	sa, sb := s.sets[a], s.sets[b]
	var out Set
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		switch {
		case sa[i] < sb[j]:
			out = append(out, sa[i])
			i++
		case sa[i] > sb[j]:
			j++
		default:
			i++
			j++
		}
	}
	out = append(out, sa[i:]...)
	return out, Work{Scanned: i + j + len(out)}
}

// SIsMember reports whether member is in the set at key, by binary
// search.
func (s *Store) SIsMember(key string, member int32) (bool, Work) {
	set := s.sets[key]
	lo, hi := 0, len(set)
	steps := 0
	for lo < hi {
		steps++
		mid := lo + (hi-lo)/2
		switch {
		case set[mid] < member:
			lo = mid + 1
		case set[mid] > member:
			hi = mid
		default:
			return true, Work{Scanned: steps}
		}
	}
	return false, Work{Scanned: steps + 1}
}

// SRem removes members from the set at key, returning how many were
// actually present.
func (s *Store) SRem(key string, members ...int32) int {
	set := s.sets[key]
	removed := 0
	for _, m := range members {
		lo, hi := 0, len(set)
		for lo < hi {
			mid := lo + (hi-lo)/2
			if set[mid] < m {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(set) && set[lo] == m {
			set = append(set[:lo], set[lo+1:]...)
			removed++
		}
	}
	if len(set) == 0 {
		delete(s.sets, key)
	} else {
		s.sets[key] = set
	}
	return removed
}

// SMembers returns a copy of the set at key.
func (s *Store) SMembers(key string) Set {
	set := s.sets[key]
	out := make(Set, len(set))
	copy(out, set)
	return out
}

// SRandMember returns n distinct random members of the set at key
// (all of them if n exceeds the cardinality), in sorted order.
func (s *Store) SRandMember(key string, n int, r *stats.RNG) Set {
	set := s.sets[key]
	if n >= len(set) {
		return s.SMembers(key)
	}
	if n <= 0 {
		return nil
	}
	// Sample n distinct indices with Floyd's algorithm, then emit in
	// index order to keep the result sorted.
	chosen := make(map[int]struct{}, n)
	for j := len(set) - n; j < len(set); j++ {
		v := r.Intn(j + 1)
		if _, taken := chosen[v]; taken {
			v = j
		}
		chosen[v] = struct{}{}
	}
	out := make(Set, 0, n)
	for i := range set {
		if _, ok := chosen[i]; ok {
			out = append(out, set[i])
		}
	}
	return out
}

// Del removes a whole set, reporting whether it existed.
func (s *Store) Del(key string) bool {
	if _, ok := s.sets[key]; !ok {
		return false
	}
	delete(s.sets, key)
	return true
}
