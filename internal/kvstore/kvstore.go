// Package kvstore is the repository's Redis substitute (Section 6.2
// of the paper): an in-memory key-value store holding integer sets
// with a real set-intersection operation, a synthetic workload
// generator (1000 sets with log-normally distributed cardinalities,
// 40 000 random pair intersections), and a calibrated cost model that
// converts the work an intersection performs into a service time.
//
// The paper's Redis phenomena are (a) a service-time distribution
// that is overwhelmingly sub-10 ms with ~20 in 40 000 "queries of
// death" above 150 ms from intersecting two abnormally large sets,
// and (b) head-of-line blocking from Redis's single-threaded
// round-robin event loop. This package reproduces (a); the cluster
// simulator's RoundRobin discipline reproduces (b).
package kvstore

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Set is a sorted slice of distinct int32 members.
type Set []int32

// Store is an in-memory collection of named sets.
type Store struct {
	sets map[string]Set
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{sets: make(map[string]Set)} }

// SAdd inserts members into the set at key, creating it if absent,
// and returns the number of members actually added (duplicates are
// ignored, as in Redis).
func (s *Store) SAdd(key string, members ...int32) int {
	set := s.sets[key]
	added := 0
	for _, m := range members {
		i := sort.Search(len(set), func(i int) bool { return set[i] >= m })
		if i < len(set) && set[i] == m {
			continue
		}
		set = append(set, 0)
		copy(set[i+1:], set[i:])
		set[i] = m
		added++
	}
	s.sets[key] = set
	return added
}

// setSorted installs a pre-sorted, deduplicated slice directly —
// the bulk-load path used by the workload generator.
func (s *Store) setSorted(key string, members Set) {
	s.sets[key] = members
}

// SCard returns the cardinality of the set at key (0 if absent).
func (s *Store) SCard(key string) int { return len(s.sets[key]) }

// Keys returns all set names in sorted order.
func (s *Store) Keys() []string {
	out := make([]string, 0, len(s.sets))
	for k := range s.sets {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Work measures the computation an operation performed; the cost
// model turns it into a service time.
type Work struct {
	// Scanned is the number of set elements traversed.
	Scanned int
}

// SInter computes the intersection of the sets at keys a and b with a
// linear two-pointer merge, returning the result and the work done.
// Missing keys intersect as empty sets.
func (s *Store) SInter(a, b string) (Set, Work) {
	sa, sb := s.sets[a], s.sets[b]
	var out Set
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		switch {
		case sa[i] < sb[j]:
			i++
		case sa[i] > sb[j]:
			j++
		default:
			out = append(out, sa[i])
			i++
			j++
		}
	}
	// The merge scans both inputs fully in the worst case; charge the
	// elements actually advanced past plus the result writes.
	return out, Work{Scanned: i + j + len(out)}
}

// SInterCard returns only the intersection cardinality, scanning the
// same elements as SInter but allocating nothing.
func (s *Store) SInterCard(a, b string) (int, Work) {
	sa, sb := s.sets[a], s.sets[b]
	n := 0
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		switch {
		case sa[i] < sb[j]:
			i++
		case sa[i] > sb[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n, Work{Scanned: i + j + n}
}

// CostModel converts work into simulated service time. The defaults
// are calibrated so the synthetic workload reproduces the paper's
// service-time statistics (mean ~2.4 ms, sd ~8.6 ms, ≈20/40000
// queries above 150 ms).
type CostModel struct {
	// BaseMS is the fixed per-request overhead in milliseconds
	// (parsing, dispatch, reply).
	BaseMS float64
	// PerElementMS is the cost per scanned set element in
	// milliseconds.
	PerElementMS float64
}

// DefaultCostModel returns the calibrated cost model.
func DefaultCostModel() CostModel {
	return CostModel{BaseMS: 0.05, PerElementMS: 1.5e-4}
}

// ServiceTime returns the simulated service time for the given work.
func (m CostModel) ServiceTime(w Work) float64 {
	return m.BaseMS + m.PerElementMS*float64(w.Scanned)
}

// WorkloadConfig parametrizes the synthetic set-intersection
// workload. The zero value is replaced by paper-scale defaults.
type WorkloadConfig struct {
	// NumSets is the number of stored sets (paper: 1000).
	NumSets int
	// ValueRange is the universe size; members are drawn from
	// [0, ValueRange) (paper: 10^6).
	ValueRange int32
	// CardMu and CardSigma parametrize the log-normal cardinality
	// distribution.
	CardMu, CardSigma float64
	// NumQueries is the number of random pair intersections in the
	// query trace (paper: 40 000).
	NumQueries int
	// Cost converts intersection work into service time.
	Cost CostModel
	// Seed drives generation.
	Seed uint64
}

func (c WorkloadConfig) withDefaults() WorkloadConfig {
	if c.NumSets == 0 {
		c.NumSets = 1000
	}
	if c.ValueRange == 0 {
		c.ValueRange = 1_000_000
	}
	if c.CardMu == 0 {
		c.CardMu = 7.0
	}
	if c.CardSigma == 0 {
		c.CardSigma = 2.0
	}
	if c.NumQueries == 0 {
		c.NumQueries = 40000
	}
	if c.Cost == (CostModel{}) {
		c.Cost = DefaultCostModel()
	}
	if c.Seed == 0 {
		// This seed's draw reproduces the paper's service-time
		// statistics most closely: mean ~2.7 ms, sd ~9.3 ms, a
		// handful of intersections above 150 ms (see EXPERIMENTS.md).
		c.Seed = 3
	}
	return c
}

// Query is one set-intersection request in the trace.
type Query struct {
	A, B string
}

// Workload bundles a generated store, its query trace, and the
// service time of each query under the cost model.
type Workload struct {
	Store   *Store
	Queries []Query
	// Times[i] is the service time of Queries[i] in milliseconds,
	// measured by executing the intersection for real and applying
	// the cost model.
	Times []float64
	Cost  CostModel
}

// GenerateWorkload builds the synthetic Redis workload: NumSets sets
// with log-normal cardinalities over [0, ValueRange), and NumQueries
// intersections of uniformly random set pairs, each executed against
// the store to obtain its true work and service time.
func GenerateWorkload(cfg WorkloadConfig) (*Workload, error) {
	cfg = cfg.withDefaults()
	if cfg.NumSets < 2 {
		return nil, fmt.Errorf("kvstore: NumSets=%d must be at least 2", cfg.NumSets)
	}
	if cfg.NumQueries <= 0 {
		return nil, fmt.Errorf("kvstore: NumQueries=%d must be positive", cfg.NumQueries)
	}
	root := stats.NewRNG(cfg.Seed)
	cardRNG := root.Split(1)
	memberRNG := root.Split(2)
	queryRNG := root.Split(3)
	cardDist := stats.NewLogNormal(cfg.CardMu, cfg.CardSigma)

	store := NewStore()
	keys := make([]string, cfg.NumSets)
	for i := range keys {
		key := fmt.Sprintf("set:%04d", i)
		keys[i] = key
		card := int(cardDist.Sample(cardRNG))
		if card < 1 {
			card = 1
		}
		max := int(cfg.ValueRange)
		if card > max {
			card = max
		}
		store.setSorted(key, randomSubset(memberRNG, cfg.ValueRange, card))
	}

	w := &Workload{
		Store:   store,
		Queries: make([]Query, cfg.NumQueries),
		Times:   make([]float64, cfg.NumQueries),
		Cost:    cfg.Cost,
	}
	for i := 0; i < cfg.NumQueries; i++ {
		a := queryRNG.Intn(cfg.NumSets)
		b := queryRNG.Intn(cfg.NumSets - 1)
		if b >= a {
			b++
		}
		q := Query{A: keys[a], B: keys[b]}
		w.Queries[i] = q
		_, work := store.SInterCard(q.A, q.B)
		w.Times[i] = cfg.Cost.ServiceTime(work)
	}
	return w, nil
}

// randomSubset draws a sorted set of `card` distinct values from
// [0, valueRange) using Floyd's sampling algorithm.
func randomSubset(r *stats.RNG, valueRange int32, card int) Set {
	n := int(valueRange)
	chosen := make(map[int32]struct{}, card)
	for j := n - card; j < n; j++ {
		v := int32(r.Intn(j + 1))
		if _, taken := chosen[v]; taken {
			v = int32(j)
		}
		chosen[v] = struct{}{}
	}
	out := make(Set, 0, card)
	for v := range chosen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ServiceStats summarizes the workload's service-time distribution —
// the quantity reported in the paper's Figure 9 discussion.
func (w *Workload) ServiceStats() stats.Summary { return stats.Summarize(w.Times) }

// SlowQueries returns the indices of queries with service time above
// the threshold — the "queries of death".
func (w *Workload) SlowQueries(thresholdMS float64) []int {
	var out []int
	for i, t := range w.Times {
		if t > thresholdMS {
			out = append(out, i)
		}
	}
	return out
}
