package kvstore

import (
	"math"
	"testing"
)

func cacheFixture(t *testing.T, hitRate float64) (*Workload, *CacheWorkload) {
	t.Helper()
	w, err := GenerateWorkload(WorkloadConfig{NumSets: 100, NumQueries: 2000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cw, err := w.CacheView(CacheConfig{HitRate: hitRate, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return w, cw
}

func TestCacheViewValidation(t *testing.T) {
	w, _ := cacheFixture(t, 0.5)
	if _, err := w.CacheView(CacheConfig{HitRate: -0.1}); err == nil {
		t.Error("CacheView accepted a negative hit rate")
	}
	if _, err := w.CacheView(CacheConfig{HitRate: 1.5}); err == nil {
		t.Error("CacheView accepted a hit rate above 1")
	}
	empty := &Workload{}
	if _, err := empty.CacheView(CacheConfig{HitRate: 0.5}); err == nil {
		t.Error("CacheView accepted an empty workload")
	}
}

// TestCacheViewHitStream checks the Bernoulli stream: the realized
// hit rate tracks the configured one, the draw is reproducible from
// the seed, and different seeds give different patterns.
func TestCacheViewHitStream(t *testing.T) {
	w, cw := cacheFixture(t, 0.7)
	rate := cw.MeasuredHitRate(0, len(cw.Hits))
	if math.Abs(rate-0.7) > 0.05 {
		t.Errorf("realized hit rate %.3f far from 0.7", rate)
	}
	again, err := w.CacheView(CacheConfig{HitRate: 0.7, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cw.Hits {
		if cw.Hits[i] != again.Hits[i] {
			t.Fatalf("hit stream not reproducible at query %d", i)
		}
	}
	other, err := w.CacheView(CacheConfig{HitRate: 0.7, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range cw.Hits {
		if cw.Hits[i] == other.Hits[i] {
			same++
		}
	}
	if same == len(cw.Hits) {
		t.Error("different seeds produced identical hit streams")
	}
}

// TestCacheViewResultsAndTimes checks that hits carry the real
// precomputed intersection, misses carry nothing, and the calibrated
// cache times are the lookup cost plus the result scan — strictly
// cheaper than recomputing the intersection for any non-trivial
// query.
func TestCacheViewResultsAndTimes(t *testing.T) {
	w, cw := cacheFixture(t, 0.5)
	hits, misses := 0, 0
	for i, q := range w.Queries {
		res, ok := cw.Lookup(i)
		if ok != cw.Hits[i] {
			t.Fatalf("Lookup(%d) hit=%v, Hits[%d]=%v", i, ok, i, cw.Hits[i])
		}
		if !ok {
			misses++
			if res != nil {
				t.Fatalf("miss %d carries a cached result", i)
			}
			if cw.Times[i] != cw.Cost.ServiceTime(Work{}) {
				t.Fatalf("miss %d time %v, want bare lookup cost", i, cw.Times[i])
			}
			continue
		}
		hits++
		want, _ := w.Store.SInter(q.A, q.B)
		if len(res) != len(want) {
			t.Fatalf("cached result for %d has %d members, want %d", i, len(res), len(want))
		}
		if got := cw.Cost.ServiceTime(Work{Scanned: len(res)}); cw.Times[i] != got {
			t.Fatalf("hit %d time %v, want %v", i, cw.Times[i], got)
		}
	}
	if hits == 0 || misses == 0 {
		t.Fatalf("degenerate fixture: %d hits, %d misses", hits, misses)
	}
	if cm, sm := cw.MeanServiceMS(), w.ServiceStats().Mean; cm >= sm {
		t.Errorf("cache mean service %.4f not cheaper than store mean %.4f", cm, sm)
	}
}

func TestCacheMeasuredHitRateBounds(t *testing.T) {
	_, cw := cacheFixture(t, 0.5)
	for _, bad := range [][2]int{{-1, 10}, {0, len(cw.Hits) + 1}, {5, 5}} {
		if r := cw.MeasuredHitRate(bad[0], bad[1]); r != 0 {
			t.Errorf("MeasuredHitRate%v = %v, want 0", bad, r)
		}
	}
}
