package kvstore

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func setEqual(a, b Set) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSUnion(t *testing.T) {
	s := NewStore()
	s.SAdd("a", 1, 3, 5)
	s.SAdd("b", 2, 3, 6)
	got, work := s.SUnion("a", "b")
	if !setEqual(got, Set{1, 2, 3, 5, 6}) {
		t.Fatalf("SUnion = %v", got)
	}
	if work.Scanned == 0 {
		t.Fatal("no work recorded")
	}
	if got, _ := s.SUnion("a", "missing"); !setEqual(got, Set{1, 3, 5}) {
		t.Fatalf("union with missing = %v", got)
	}
}

func TestSDiff(t *testing.T) {
	s := NewStore()
	s.SAdd("a", 1, 2, 3, 4)
	s.SAdd("b", 2, 4, 6)
	if got, _ := s.SDiff("a", "b"); !setEqual(got, Set{1, 3}) {
		t.Fatalf("SDiff = %v", got)
	}
	if got, _ := s.SDiff("b", "a"); !setEqual(got, Set{6}) {
		t.Fatalf("reverse SDiff = %v", got)
	}
	if got, _ := s.SDiff("missing", "a"); len(got) != 0 {
		t.Fatalf("missing SDiff = %v", got)
	}
}

func TestSIsMember(t *testing.T) {
	s := NewStore()
	s.SAdd("a", 1, 5, 9)
	for _, c := range []struct {
		m    int32
		want bool
	}{{1, true}, {5, true}, {9, true}, {0, false}, {6, false}, {10, false}} {
		got, work := s.SIsMember("a", c.m)
		if got != c.want {
			t.Errorf("SIsMember(%d) = %v", c.m, got)
		}
		if work.Scanned <= 0 {
			t.Errorf("SIsMember(%d) recorded no work", c.m)
		}
	}
	if got, _ := s.SIsMember("missing", 1); got {
		t.Error("member of missing set")
	}
}

func TestSRem(t *testing.T) {
	s := NewStore()
	s.SAdd("a", 1, 2, 3)
	if got := s.SRem("a", 2, 9); got != 1 {
		t.Fatalf("SRem removed %d", got)
	}
	if got := s.SMembers("a"); !setEqual(got, Set{1, 3}) {
		t.Fatalf("after SRem: %v", got)
	}
	// Removing the last members deletes the key entirely.
	s.SRem("a", 1, 3)
	if s.SCard("a") != 0 {
		t.Fatal("set not emptied")
	}
	if len(s.Keys()) != 0 {
		t.Fatal("empty set still listed")
	}
}

func TestSMembersCopies(t *testing.T) {
	s := NewStore()
	s.SAdd("a", 1, 2)
	m := s.SMembers("a")
	m[0] = 99
	if got := s.SMembers("a"); got[0] != 1 {
		t.Fatal("SMembers exposed internal storage")
	}
}

func TestSRandMember(t *testing.T) {
	s := NewStore()
	s.SAdd("a", 1, 2, 3, 4, 5, 6, 7, 8)
	r := stats.NewRNG(5)
	got := s.SRandMember("a", 3, r)
	if len(got) != 3 {
		t.Fatalf("SRandMember returned %d members", len(got))
	}
	for i, v := range got {
		if ok, _ := s.SIsMember("a", v); !ok {
			t.Fatalf("SRandMember returned non-member %d", v)
		}
		if i > 0 && got[i-1] >= v {
			t.Fatal("SRandMember result not sorted")
		}
	}
	// n >= card returns everything.
	if got := s.SRandMember("a", 100, r); len(got) != 8 {
		t.Fatalf("oversized SRandMember returned %d", len(got))
	}
	if got := s.SRandMember("a", 0, r); got != nil {
		t.Fatalf("zero SRandMember = %v", got)
	}
}

func TestDel(t *testing.T) {
	s := NewStore()
	s.SAdd("a", 1)
	if !s.Del("a") {
		t.Fatal("Del existing returned false")
	}
	if s.Del("a") {
		t.Fatal("Del missing returned true")
	}
}

// Property: |A∪B| + |A∩B| = |A| + |B| (inclusion-exclusion), and
// A\B, A∩B partition A.
func TestSetAlgebraProperty(t *testing.T) {
	f := func(seed uint64, caRaw, cbRaw uint8) bool {
		r := stats.NewRNG(seed)
		s := NewStore()
		ca, cb := int(caRaw%60)+1, int(cbRaw%60)+1
		s.setSorted("a", randomSubset(r, 150, ca))
		s.setSorted("b", randomSubset(r, 150, cb))
		union, _ := s.SUnion("a", "b")
		inter, _ := s.SInter("a", "b")
		diff, _ := s.SDiff("a", "b")
		if len(union)+len(inter) != ca+cb {
			return false
		}
		return len(diff)+len(inter) == ca
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: SIsMember agrees with a linear scan.
func TestSIsMemberProperty(t *testing.T) {
	f := func(seed uint64, probe uint8) bool {
		r := stats.NewRNG(seed)
		s := NewStore()
		s.setSorted("a", randomSubset(r, 100, int(probe%50)+1))
		m := int32(probe % 100)
		got, _ := s.SIsMember("a", m)
		want := false
		for _, v := range s.SMembers("a") {
			if v == m {
				want = true
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
