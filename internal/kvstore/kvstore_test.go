package kvstore

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestSAddAndSCard(t *testing.T) {
	s := NewStore()
	if got := s.SAdd("a", 3, 1, 2); got != 3 {
		t.Fatalf("SAdd added %d", got)
	}
	if got := s.SAdd("a", 2, 4); got != 1 {
		t.Fatalf("duplicate SAdd added %d", got)
	}
	if got := s.SCard("a"); got != 4 {
		t.Fatalf("SCard = %d", got)
	}
	if got := s.SCard("missing"); got != 0 {
		t.Fatalf("missing SCard = %d", got)
	}
	// Members must be kept sorted.
	set := s.sets["a"]
	if !sort.SliceIsSorted(set, func(i, j int) bool { return set[i] < set[j] }) {
		t.Fatalf("set not sorted: %v", set)
	}
}

func TestSInterBasic(t *testing.T) {
	s := NewStore()
	s.SAdd("a", 1, 2, 3, 5, 8)
	s.SAdd("b", 2, 3, 4, 8, 9)
	got, work := s.SInter("a", "b")
	want := Set{2, 3, 8}
	if len(got) != len(want) {
		t.Fatalf("SInter = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SInter = %v, want %v", got, want)
		}
	}
	if work.Scanned <= 0 {
		t.Fatalf("work = %+v", work)
	}
}

func TestSInterMissingAndEmpty(t *testing.T) {
	s := NewStore()
	s.SAdd("a", 1, 2)
	if got, _ := s.SInter("a", "missing"); len(got) != 0 {
		t.Fatalf("missing intersect = %v", got)
	}
	if got, _ := s.SInter("x", "y"); len(got) != 0 {
		t.Fatalf("both missing = %v", got)
	}
	if n, _ := s.SInterCard("a", "missing"); n != 0 {
		t.Fatalf("missing SInterCard = %d", n)
	}
}

func TestSInterCardMatchesSInter(t *testing.T) {
	s := NewStore()
	s.SAdd("a", 1, 3, 5, 7, 9, 11)
	s.SAdd("b", 3, 4, 5, 6, 7)
	set, w1 := s.SInter("a", "b")
	n, w2 := s.SInterCard("a", "b")
	if n != len(set) {
		t.Fatalf("SInterCard %d != len(SInter) %d", n, len(set))
	}
	if w1 != w2 {
		t.Fatalf("work mismatch: %+v vs %+v", w1, w2)
	}
}

func TestKeysSorted(t *testing.T) {
	s := NewStore()
	s.SAdd("b", 1)
	s.SAdd("a", 1)
	s.SAdd("c", 1)
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestCostModel(t *testing.T) {
	m := CostModel{BaseMS: 0.1, PerElementMS: 0.001}
	if got := m.ServiceTime(Work{Scanned: 1000}); math.Abs(got-1.1) > 1e-12 {
		t.Fatalf("service time = %v", got)
	}
	if got := m.ServiceTime(Work{}); got != 0.1 {
		t.Fatalf("base-only service time = %v", got)
	}
}

func TestRandomSubset(t *testing.T) {
	r := stats.NewRNG(1)
	for _, card := range []int{1, 10, 1000} {
		set := randomSubset(r, 10000, card)
		if len(set) != card {
			t.Fatalf("card %d: got %d members", card, len(set))
		}
		seen := map[int32]bool{}
		for i, v := range set {
			if v < 0 || v >= 10000 {
				t.Fatalf("member %d out of range", v)
			}
			if seen[v] {
				t.Fatalf("duplicate member %d", v)
			}
			seen[v] = true
			if i > 0 && set[i-1] >= v {
				t.Fatal("subset not sorted")
			}
		}
	}
	// Full-range subset is the whole universe.
	full := randomSubset(r, 100, 100)
	if len(full) != 100 || full[0] != 0 || full[99] != 99 {
		t.Fatalf("full subset wrong: len=%d", len(full))
	}
}

func TestGenerateWorkloadValidation(t *testing.T) {
	if _, err := GenerateWorkload(WorkloadConfig{NumSets: 1, NumQueries: 10}); err == nil {
		t.Error("NumSets=1 accepted")
	}
	if _, err := GenerateWorkload(WorkloadConfig{NumSets: 10, NumQueries: -1}); err == nil {
		t.Error("negative NumQueries accepted")
	}
}

func TestGenerateWorkloadSmall(t *testing.T) {
	w, err := GenerateWorkload(WorkloadConfig{
		NumSets: 50, ValueRange: 10000, NumQueries: 500, Seed: 1,
		CardMu: 4, CardSigma: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 500 || len(w.Times) != 500 {
		t.Fatalf("workload sizes: %d queries, %d times", len(w.Queries), len(w.Times))
	}
	for i, q := range w.Queries {
		if q.A == q.B {
			t.Fatalf("query %d intersects a set with itself", i)
		}
		if w.Times[i] <= 0 {
			t.Fatalf("query %d service time %v", i, w.Times[i])
		}
	}
}

func TestGenerateWorkloadDeterministic(t *testing.T) {
	cfg := WorkloadConfig{NumSets: 30, ValueRange: 5000, NumQueries: 200, Seed: 9,
		CardMu: 4, CardSigma: 1}
	a, err := GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Times {
		if a.Times[i] != b.Times[i] || a.Queries[i] != b.Queries[i] {
			t.Fatal("same-seed workloads differ")
		}
	}
}

func TestPaperScaleWorkloadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation in -short mode")
	}
	w, err := GenerateWorkload(WorkloadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s := w.ServiceStats()
	// The paper reports mean 2.366 ms, sd 8.64 ms, over 98% of
	// queries below 10 ms at 20 ms granularity, and a handful of
	// "queries of death" above 150 ms. Verify the same shape.
	if s.Mean < 1 || s.Mean > 5 {
		t.Errorf("mean service %v outside [1, 5] ms", s.Mean)
	}
	if s.StdDev < 4 || s.StdDev > 20 {
		t.Errorf("sd %v outside [4, 20] ms", s.StdDev)
	}
	under10 := 0
	for _, v := range w.Times {
		if v < 10 {
			under10++
		}
	}
	if frac := float64(under10) / float64(len(w.Times)); frac < 0.90 {
		t.Errorf("only %v of queries under 10 ms", frac)
	}
	slow := w.SlowQueries(150)
	if len(slow) == 0 {
		t.Error("no queries of death above 150 ms")
	}
	if len(slow) > 200 {
		t.Errorf("%d queries above 150 ms — tail too fat", len(slow))
	}
	// Queries of death must trace back to abnormally large set pairs.
	q := w.Queries[slow[0]]
	if w.Store.SCard(q.A)+w.Store.SCard(q.B) < 100000 {
		t.Errorf("slow query over small sets: %d + %d",
			w.Store.SCard(q.A), w.Store.SCard(q.B))
	}
}

// Property: SInter is commutative and its cardinality never exceeds
// either input.
func TestSInterProperty(t *testing.T) {
	f := func(seed uint64, caRaw, cbRaw uint8) bool {
		r := stats.NewRNG(seed)
		ca, cb := int(caRaw%50)+1, int(cbRaw%50)+1
		s := NewStore()
		s.setSorted("a", randomSubset(r, 200, ca))
		s.setSorted("b", randomSubset(r, 200, cb))
		ab, _ := s.SInter("a", "b")
		ba, _ := s.SInter("b", "a")
		if len(ab) != len(ba) {
			return false
		}
		for i := range ab {
			if ab[i] != ba[i] {
				return false
			}
		}
		return len(ab) <= ca && len(ab) <= cb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: SInter agrees with a brute-force map intersection.
func TestSInterBruteForceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		s := NewStore()
		sa := randomSubset(r, 100, r.Intn(40)+1)
		sb := randomSubset(r, 100, r.Intn(40)+1)
		s.setSorted("a", sa)
		s.setSorted("b", sb)
		got, _ := s.SInter("a", "b")
		inA := map[int32]bool{}
		for _, v := range sa {
			inA[v] = true
		}
		var want []int32
		for _, v := range sb {
			if inA[v] {
				want = append(want, v)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSInter(b *testing.B) {
	r := stats.NewRNG(1)
	s := NewStore()
	s.setSorted("a", randomSubset(r, 1_000_000, 50000))
	s.setSorted("b", randomSubset(r, 1_000_000, 50000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SInterCard("a", "b")
	}
}
