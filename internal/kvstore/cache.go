package kvstore

import (
	"fmt"

	"repro/internal/stats"
)

// CacheConfig parametrizes a cache view of a workload: the fast tier
// of a two-tier (cache -> store) deployment, where a fraction of
// queries find their precomputed answer in the cache and the rest
// miss and must fall through to the authoritative store.
type CacheConfig struct {
	// HitRate is the fraction of queries whose result is cached, in
	// [0, 1]. Which queries hit is decided by an independent Bernoulli
	// draw per query from Seed, so the hit pattern is a reproducible
	// bit stream — the live cache backend and the tiered simulator
	// consume the same Hits slice and therefore miss on exactly the
	// same queries.
	HitRate float64
	// Seed drives the Bernoulli hit stream. The zero seed is valid
	// (and distinct from every other seed).
	Seed uint64
	// Cost converts cache work into service time. The default
	// (DefaultCacheCostModel) makes lookups roughly an order of
	// magnitude cheaper than recomputing the intersection: a cache
	// answers from a precomputed result instead of merging two sets.
	Cost CostModel
}

// DefaultCacheCostModel returns the calibrated cache-tier cost model:
// the same fixed per-request overhead as the store (parsing,
// dispatch, reply) with a 10x cheaper per-element cost — the cache
// only scans the precomputed result to serialize it, never the input
// sets.
func DefaultCacheCostModel() CostModel {
	return CostModel{BaseMS: 0.05, PerElementMS: 1.5e-5}
}

// CacheWorkload is the cache tier's view of a workload: the same
// query trace, a Bernoulli hit stream, the precomputed results of the
// hit queries, and calibrated cache-tier service times (a hit scans
// its cached result; a miss pays only the lookup overhead).
type CacheWorkload struct {
	// Queries aliases the backing workload's trace: query i here is
	// query i there, so a two-tier client indexes both tiers with one
	// query number.
	Queries []Query
	// Hits[i] reports whether query i's result is cached. This is the
	// bit stream a tiered simulator must share with the live path so
	// both worlds miss on the same queries.
	Hits []bool
	// Times[i] is the cache-tier service time of query i in
	// milliseconds: the lookup overhead, plus the cost of scanning the
	// cached result when the query hits.
	Times []float64
	// Cost is the cache-tier cost model behind Times.
	Cost CostModel

	results []Set // precomputed answers, nil for misses
}

// CacheView builds the cache tier for this workload: a Bernoulli(
// HitRate) draw per query decides which queries are cached, the hit
// queries' intersections are precomputed for real, and every query
// gets a calibrated cache-tier service time.
func (w *Workload) CacheView(cfg CacheConfig) (*CacheWorkload, error) {
	if len(w.Queries) == 0 {
		return nil, fmt.Errorf("kvstore: cannot build a cache view of an empty workload")
	}
	if cfg.HitRate < 0 || cfg.HitRate > 1 {
		return nil, fmt.Errorf("kvstore: cache hit rate %v outside [0, 1]", cfg.HitRate)
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCacheCostModel()
	}
	cw := &CacheWorkload{
		Queries: w.Queries,
		Hits:    make([]bool, len(w.Queries)),
		Times:   make([]float64, len(w.Queries)),
		Cost:    cfg.Cost,
		results: make([]Set, len(w.Queries)),
	}
	hitRNG := stats.NewRNG(cfg.Seed)
	for i, q := range w.Queries {
		cw.Hits[i] = hitRNG.Bool(cfg.HitRate)
		work := Work{}
		if cw.Hits[i] {
			res, _ := w.Store.SInter(q.A, q.B)
			cw.results[i] = res
			work.Scanned = len(res)
		}
		cw.Times[i] = cfg.Cost.ServiceTime(work)
	}
	return cw, nil
}

// Lookup returns query i's cached result and whether it was a hit.
// Misses return (nil, false) — the fall-through signal a two-tier
// client turns into a store-tier dispatch.
func (cw *CacheWorkload) Lookup(i int) (Set, bool) {
	return cw.results[i], cw.Hits[i]
}

// MeasuredHitRate returns the realized hit fraction of the Bernoulli
// stream over queries [from, to) — the denominator-matched statistic
// for comparing against a measured live run.
func (cw *CacheWorkload) MeasuredHitRate(from, to int) float64 {
	if from < 0 || to > len(cw.Hits) || from >= to {
		return 0
	}
	hits := 0
	for i := from; i < to; i++ {
		if cw.Hits[i] {
			hits++
		}
	}
	return float64(hits) / float64(to-from)
}

// MeanServiceMS returns the mean cache-tier model service time — the
// quantity that converts a target cache-tier utilization into an
// arrival rate.
func (cw *CacheWorkload) MeanServiceMS() float64 {
	var sum float64
	for _, t := range cw.Times {
		sum += t
	}
	return sum / float64(len(cw.Times))
}
