package kvstore

import "fmt"

// Partition splits the workload across shards by hash-partitioning
// the value universe: shard s holds, for every stored set, exactly
// the members v with v mod shards == s. A query's full intersection
// is then the disjoint union of its per-shard intersections, so a
// client that fans the query out to every shard and merges the
// responses computes the same answer the unsharded store would —
// the canonical partitioned-fleet topology where the query completes
// when the slowest shard responds.
//
// Each returned workload shares the original query trace but carries
// its own store (the shard's slice of every set) and its own Times:
// the service time of each sub-query, calibrated by executing the
// intersection against the shard's slices for real and applying the
// same cost model. Sub-queries scan roughly 1/shards of the elements
// but still pay the full per-request base cost, so sharding buys the
// usual sub-linear speedup — and the per-query response becomes a
// max over shards, the regime where a single straggling shard delays
// the whole query.
func (w *Workload) Partition(shards int) ([]*Workload, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("kvstore: Partition(%d) needs at least one shard", shards)
	}
	if len(w.Queries) == 0 {
		return nil, fmt.Errorf("kvstore: cannot partition an empty workload")
	}
	out := make([]*Workload, shards)
	for s := range out {
		out[s] = &Workload{
			Store:   NewStore(),
			Queries: w.Queries,
			Times:   make([]float64, len(w.Queries)),
			Cost:    w.Cost,
		}
	}
	// Filtering a sorted set preserves order, so the shard slices can
	// be installed directly without re-sorting.
	for _, key := range w.Store.Keys() {
		parts := make([]Set, shards)
		for _, v := range w.Store.sets[key] {
			s := int(uint32(v) % uint32(shards))
			parts[s] = append(parts[s], v)
		}
		for s := range parts {
			out[s].Store.setSorted(key, parts[s])
		}
	}
	for s := range out {
		for i, q := range w.Queries {
			_, work := out[s].Store.SInterCard(q.A, q.B)
			out[s].Times[i] = w.Cost.ServiceTime(work)
		}
	}
	return out, nil
}
