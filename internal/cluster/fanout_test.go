package cluster

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/reissue"
)

func TestFanOutValidation(t *testing.T) {
	src := DistSource{Dist: stats.NewExponential(1)}
	if _, err := New(Config{
		Servers: 2, ArrivalRate: 0.1, Queries: 10, Source: src, FanOut: -1,
	}); err == nil {
		t.Error("negative fan-out accepted")
	}
	if _, err := New(Config{
		Servers: 2, ArrivalRate: 0.1, Queries: 10, Source: src, FanOut: 3,
	}); err == nil {
		t.Error("non-divisible query count accepted")
	}
}

func mkFanOut(t *testing.T, fan int, seed uint64) *Cluster {
	t.Helper()
	dist := stats.NewExponential(0.1)
	c, err := New(Config{
		Servers:     10,
		ArrivalRate: ArrivalRateForUtilization(0.3, 10, dist.Mean()),
		Queries:     20000,
		Warmup:      2000,
		Source:      DistSource{Dist: dist},
		Seed:        seed,
		FanOut:      fan,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFanOutBookkeeping(t *testing.T) {
	c := mkFanOut(t, 10, 61)
	res := c.RunDetailed(reissue.None{})
	if got := len(res.FanOutResponses); got != 2000 {
		t.Fatalf("fan-out batches = %d, want 2000", got)
	}
	// Each batch response is the max of its members, so the batch
	// median must exceed the per-request median.
	reqMed := metrics.TailLatency(res.Log.ResponseTimes(), 50)
	batchMed := metrics.TailLatency(res.FanOutResponses, 50)
	if batchMed <= reqMed {
		t.Fatalf("batch median %v not above request median %v", batchMed, reqMed)
	}
	// No-fan-out run leaves the field empty.
	plain := mkFanOut(t, 1, 61).RunDetailed(reissue.None{})
	if plain.FanOutResponses != nil {
		t.Fatal("FanOutResponses set without fan-out")
	}
}

func TestFanOutTailAmplification(t *testing.T) {
	// The paper's motivation: with a fan-out of 10, the per-request
	// ~P90 becomes the batch median, and the batch P99 digs deep into
	// the per-request tail — "the slower servers typically dominate".
	c := mkFanOut(t, 10, 63)
	res := c.RunDetailed(reissue.None{})
	reqP50 := metrics.TailLatency(res.Log.ResponseTimes(), 50)
	batchP50 := metrics.TailLatency(res.FanOutResponses, 50)
	if batchP50 < reqP50*2 {
		t.Fatalf("fan-out did not amplify the median: request %v, batch %v",
			reqP50, batchP50)
	}
}

func TestFanOutHedgingRecoversTail(t *testing.T) {
	// Per-sub-request SingleR hedging shrinks the batch tail: this is
	// the deployment scenario hedging was invented for.
	c := mkFanOut(t, 10, 65)
	base := c.RunDetailed(reissue.None{})
	baseP99 := metrics.TailLatency(base.FanOutResponses, 99)

	// Tune on the sub-request distribution, evaluate on batches.
	rx := base.Log.PrimaryTimes()
	pol, _, err := reissue.ComputeOptimalSingleR(rx, nil, 0.99, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	hedged := c.RunDetailed(pol)
	hedgedP99 := metrics.TailLatency(hedged.FanOutResponses, 99)
	if hedgedP99 >= baseP99 {
		t.Fatalf("hedging did not reduce fan-out P99: %v vs %v", hedgedP99, baseP99)
	}
	if hedged.ReissueRate > 0.12 {
		t.Fatalf("reissue rate %v overshoots budget", hedged.ReissueRate)
	}
}
