package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestRandomLBUniform(t *testing.T) {
	r := stats.NewRNG(1)
	lengths := make([]int, 10)
	counts := make([]int, 10)
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[(RandomLB{}).Pick(r, lengths, -1)]++
	}
	want := float64(trials) / 10
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("server %d picked %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestRandomLBExcludes(t *testing.T) {
	r := stats.NewRNG(2)
	lengths := make([]int, 5)
	for i := 0; i < 10000; i++ {
		if got := (RandomLB{}).Pick(r, lengths, 3); got == 3 {
			t.Fatal("excluded server picked")
		}
	}
	// With a single server the exclusion cannot be honored.
	if got := (RandomLB{}).Pick(r, []int{0}, 0); got != 0 {
		t.Fatalf("single-server pick = %d", got)
	}
}

func TestMinOfTwoPrefersShorter(t *testing.T) {
	r := stats.NewRNG(3)
	// Server 0 is empty, all others heavily loaded: min-of-two should
	// pick server 0 roughly  1 - C(9,2)/C(10,2) = 1 - 36/45 = 20% of
	// the time, versus 10% for random.
	lengths := []int{0, 9, 9, 9, 9, 9, 9, 9, 9, 9}
	const trials = 50000
	hit := 0
	for i := 0; i < trials; i++ {
		if (MinOfTwoLB{}).Pick(r, lengths, -1) == 0 {
			hit++
		}
	}
	got := float64(hit) / trials
	if math.Abs(got-0.2) > 0.02 {
		t.Fatalf("min-of-two picked empty server %.3f of the time, want ~0.2", got)
	}
}

func TestMinOfTwoExcludes(t *testing.T) {
	r := stats.NewRNG(4)
	lengths := []int{0, 1, 2}
	for i := 0; i < 5000; i++ {
		if (MinOfTwoLB{}).Pick(r, lengths, 0) == 0 {
			t.Fatal("excluded server picked")
		}
	}
}

func TestMinOfAllPicksMinimum(t *testing.T) {
	r := stats.NewRNG(5)
	lengths := []int{5, 3, 8, 3, 9}
	for i := 0; i < 1000; i++ {
		got := (MinOfAllLB{}).Pick(r, lengths, -1)
		if got != 1 && got != 3 {
			t.Fatalf("picked %d with queue %d, want a minimum", got, lengths[got])
		}
	}
}

func TestMinOfAllTieBreaksUniformly(t *testing.T) {
	r := stats.NewRNG(6)
	lengths := []int{2, 2, 2, 9}
	counts := make([]int, 4)
	const trials = 60000
	for i := 0; i < trials; i++ {
		counts[(MinOfAllLB{}).Pick(r, lengths, -1)]++
	}
	if counts[3] != 0 {
		t.Fatal("non-minimal server picked")
	}
	want := float64(trials) / 3
	for i := 0; i < 3; i++ {
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Errorf("tie server %d picked %d, want ~%.0f", i, counts[i], want)
		}
	}
}

func TestMinOfAllExcludes(t *testing.T) {
	r := stats.NewRNG(7)
	lengths := []int{0, 5, 6}
	for i := 0; i < 1000; i++ {
		if got := (MinOfAllLB{}).Pick(r, lengths, 0); got != 1 {
			t.Fatalf("picked %d, want 1 (shortest non-excluded)", got)
		}
	}
}

func TestLoadBalancerByName(t *testing.T) {
	for name, want := range map[string]string{
		"random": "Random", "min2": "MinOfTwo", "min-of-two": "MinOfTwo",
		"minall": "MinOfAll", "min-of-all": "MinOfAll",
	} {
		lb, err := LoadBalancerByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if lb.String() != want {
			t.Errorf("%s -> %s, want %s", name, lb, want)
		}
	}
	if _, err := LoadBalancerByName("bogus"); err == nil {
		t.Error("bogus name accepted")
	}
}

// Property: every balancer returns a valid index and honors exclusion
// whenever possible.
func TestLBValidityProperty(t *testing.T) {
	lbs := []LoadBalancer{RandomLB{}, MinOfTwoLB{}, MinOfAllLB{}}
	f := func(seed uint64, nRaw, exRaw uint8) bool {
		n := int(nRaw%10) + 1
		r := stats.NewRNG(seed)
		lengths := make([]int, n)
		for i := range lengths {
			lengths[i] = r.Intn(10)
		}
		exclude := int(exRaw%(uint8(n)+1)) - 1 // -1 .. n-1
		for _, lb := range lbs {
			got := lb.Pick(r, lengths, exclude)
			if got < 0 || got >= n {
				return false
			}
			if n > 1 && got == exclude {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
