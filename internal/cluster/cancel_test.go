package cluster

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/reissue"
)

// cancelConfig builds a loaded queueing cluster with aggressive
// immediate reissue so cancellation has plenty to withdraw.
func cancelConfig(cancel bool, seed uint64) Config {
	dist := stats.NewExponential(0.1)
	return Config{
		Servers:          10,
		ArrivalRate:      ArrivalRateForUtilization(0.5, 10, dist.Mean()),
		Queries:          15000,
		Warmup:           1500,
		Source:           DistSource{Dist: dist},
		Seed:             seed,
		CancelOnComplete: cancel,
	}
}

func TestCancelOnCompleteReducesLoad(t *testing.T) {
	// With immediate reissue of everything, cancellation withdraws
	// the copy that loses the race whenever it is still queued,
	// lowering utilization and the tail.
	base, err := New(cancelConfig(false, 21))
	if err != nil {
		t.Fatal(err)
	}
	tied, err := New(cancelConfig(true, 21))
	if err != nil {
		t.Fatal(err)
	}
	runBase := base.RunDetailed(reissue.Immediate{N: 1})
	runTied := tied.RunDetailed(reissue.Immediate{N: 1})

	if runTied.Utilization >= runBase.Utilization {
		t.Fatalf("cancellation did not reduce utilization: %v >= %v",
			runTied.Utilization, runBase.Utilization)
	}
	p99Base := metrics.TailLatency(runBase.Log.ResponseTimes(), 99)
	p99Tied := metrics.TailLatency(runTied.Log.ResponseTimes(), 99)
	if p99Tied >= p99Base {
		t.Fatalf("cancellation did not improve P99: %v >= %v", p99Tied, p99Base)
	}
}

func TestCancelOnCompleteBookkeeping(t *testing.T) {
	c, err := New(cancelConfig(true, 23))
	if err != nil {
		t.Fatal(err)
	}
	res := c.RunDetailed(reissue.Immediate{N: 1})

	sawCancelledReissue := false
	for _, rec := range res.Log.Records {
		// Every query still gets exactly one end-to-end response.
		if rec.Response <= 0 {
			t.Fatalf("query %d response %v", rec.ID, rec.Response)
		}
		// A completed copy always has a positive measured time.
		if rec.PrimaryDone && rec.Primary <= 0 {
			t.Fatalf("query %d primary done with time %v", rec.ID, rec.Primary)
		}
		if rec.Reissued && rec.ReissueDone && rec.Reissue <= 0 {
			t.Fatalf("query %d reissue done with time %v", rec.ID, rec.Reissue)
		}
		// At least one copy must have completed.
		if !rec.PrimaryDone && !(rec.Reissued && rec.ReissueDone) {
			t.Fatalf("query %d completed with no finished copy", rec.ID)
		}
		if rec.Reissued && !rec.ReissueDone {
			sawCancelledReissue = true
		}
	}
	if !sawCancelledReissue {
		t.Error("no reissue was ever cancelled under immediate reissue + cancellation")
	}
	// Logs exclude incomplete copies.
	if len(res.Log.PrimaryTimes()) == len(res.Log.Records) {
		t.Error("no primary was ever cancelled — unexpected with reissues racing")
	}
	for _, y := range res.Log.ReissueTimes() {
		if y <= 0 {
			t.Fatalf("reissue log contains non-positive %v", y)
		}
	}
}

func TestCancelOnCompleteNoReissueIsNoop(t *testing.T) {
	a, err := New(cancelConfig(false, 29))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cancelConfig(true, 29))
	if err != nil {
		t.Fatal(err)
	}
	ra := a.RunDetailed(reissue.None{})
	rb := b.RunDetailed(reissue.None{})
	for i := range ra.Log.Records {
		if ra.Log.Records[i] != rb.Log.Records[i] {
			t.Fatal("cancellation changed a no-reissue run")
		}
	}
}

func TestCancelInfiniteServersNeverCancels(t *testing.T) {
	// With no queueing every copy starts immediately, so nothing is
	// ever cancellable; both copies complete.
	c, err := New(Config{
		Queries:          2000,
		Source:           DistSource{Dist: stats.NewExponential(1)},
		Seed:             31,
		CancelOnComplete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := c.RunDetailed(reissue.Immediate{N: 1})
	for _, rec := range res.Log.Records {
		if !rec.PrimaryDone || !rec.ReissueDone {
			t.Fatal("copy cancelled despite infinite servers")
		}
	}
}
