package cluster

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/reissue"
)

func queueingCfg(seed uint64) Config {
	return Config{
		Servers:     4,
		ArrivalRate: ArrivalRateForUtilization(0.4, 4, 10),
		Queries:     800,
		Warmup:      80,
		Source:      DistSource{Dist: stats.NewExponential(0.1)},
		Seed:        seed,
	}
}

func sameRun(t *testing.T, label string, a, b *Result) {
	t.Helper()
	ra, rb := a.Log.ResponseTimes(), b.Log.ResponseTimes()
	if len(ra) != len(rb) {
		t.Fatalf("%s: %d vs %d responses", label, len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("%s: response %d differs: %v vs %v", label, i, ra[i], rb[i])
		}
	}
	if a.ReissueRate != b.ReissueRate || a.Duration != b.Duration {
		t.Fatalf("%s: rate/duration differ: %v/%v vs %v/%v",
			label, a.ReissueRate, a.Duration, b.ReissueRate, b.Duration)
	}
	if a.Utilization != b.Utilization &&
		!(math.IsNaN(a.Utilization) && math.IsNaN(b.Utilization)) {
		t.Fatalf("%s: utilization differs: %v vs %v", label, a.Utilization, b.Utilization)
	}
}

// TestAdoptStateReplayIdentical is the load-bearing property of the
// sweep harness's warm engines: a cluster that adopts another's
// pooled state replays exactly the run a cold cluster would.
func TestAdoptStateReplayIdentical(t *testing.T) {
	pol := reissue.SingleR{D: 5, Q: 0.2}

	donor := mustCluster(t, queueingCfg(7))
	donor.RunDetailed(reissue.None{}) // builds and dirties the pooled state

	cold := mustCluster(t, queueingCfg(9))
	want := cold.RunDetailed(pol)

	warm := mustCluster(t, queueingCfg(9))
	warm.AdoptState(donor)
	sameRun(t, "same shape", want, warm.RunDetailed(pol))

	// Adoption across a shape change (server count and discipline)
	// rebuilds the server pool but keeps the rest of the engine.
	shifted := queueingCfg(11)
	shifted.Servers = 7
	shifted.ArrivalRate = ArrivalRateForUtilization(0.4, 7, 10)
	shifted.Discipline = PrioLIFO
	coldShift := mustCluster(t, shifted)
	wantShift := coldShift.RunDetailed(pol)
	warmShift := mustCluster(t, shifted)
	warmShift.AdoptState(warm)
	sameRun(t, "shape change", wantShift, warmShift.RunDetailed(pol))

	// Infinite-server adoption (no server pool at all).
	inf := Config{Queries: 500, Source: DistSource{Dist: stats.NewExponential(0.1)}, Seed: 3}
	coldInf := mustCluster(t, inf)
	wantInf := coldInf.RunDetailed(pol)
	warmInf := mustCluster(t, inf)
	warmInf.AdoptState(warmShift)
	sameRun(t, "infinite servers", wantInf, warmInf.RunDetailed(pol))
}

// TestAdoptStateDonorRebuilds pins the safety property: a cluster
// whose state was adopted away is still usable — it lazily rebuilds
// an engine and reproduces its original results.
func TestAdoptStateDonorRebuilds(t *testing.T) {
	donor := mustCluster(t, queueingCfg(7))
	before := donor.RunDetailed(reissue.None{})

	thief := mustCluster(t, queueingCfg(9))
	thief.AdoptState(donor)
	thief.RunDetailed(reissue.None{})

	sameRun(t, "donor after adoption", before, donor.RunDetailed(reissue.None{}))
}

// TestAdoptStateNoops pins the degenerate cases: nil/self/never-run
// donors and already-warm adopters are all no-ops.
func TestAdoptStateNoops(t *testing.T) {
	c := mustCluster(t, queueingCfg(7))
	c.AdoptState(nil)
	c.AdoptState(c)
	fresh := mustCluster(t, queueingCfg(9))
	c.AdoptState(fresh) // fresh has never run: nothing to adopt
	if c.rs != nil {
		t.Fatal("adopting from a never-run cluster created state")
	}

	donor := mustCluster(t, queueingCfg(7))
	donor.RunDetailed(reissue.None{})
	c.RunDetailed(reissue.None{})
	own := c.rs
	c.AdoptState(donor) // c already warm: keeps its own engine
	if c.rs != own {
		t.Fatal("warm cluster replaced its engine on adoption")
	}
	if donor.rs == nil {
		t.Fatal("no-op adoption stole the donor's engine")
	}
}

// TestAdoptStateAllocFree pins the perf contract: after adoption, a
// run on the new cluster performs no more allocation than a repeat
// run on a single cluster (the warm steady state).
func TestAdoptStateAllocFree(t *testing.T) {
	cfg := queueingCfg(7)
	single := mustCluster(t, cfg)
	single.RunDetailed(reissue.None{})
	baseline := testing.AllocsPerRun(3, func() {
		single.RunDetailed(reissue.None{})
	})

	warm := mustCluster(t, cfg)
	warm.RunDetailed(reissue.None{})
	adopted := testing.AllocsPerRun(3, func() {
		next := mustCluster(t, cfg)
		next.AdoptState(warm)
		next.RunDetailed(reissue.None{})
		warm = next
	})

	// One Cluster struct per iteration plus a little slack; the
	// engine itself (slab, arena, queries, servers) must not be
	// rebuilt.
	if adopted > baseline+8 {
		t.Fatalf("adopted run allocates %.0f/run, warm baseline %.0f/run", adopted, baseline)
	}
}
