package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/reissue"
)

func mustCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	src := DistSource{Dist: stats.NewExponential(1)}
	bad := []Config{
		{Queries: 0, Servers: 1, ArrivalRate: 1, Source: src},
		{Queries: 10, Servers: -1, Source: src},
		{Queries: 10, Servers: 1, ArrivalRate: 0, Source: src},
		{Queries: 10, Servers: 1, ArrivalRate: 1},
		{Queries: 10, Servers: 1, ArrivalRate: 1, Source: src, Warmup: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestInfiniteServersResponseEqualsService(t *testing.T) {
	// With no queueing and no reissue, response time == service time.
	c := mustCluster(t, Config{
		Queries: 5000,
		Source:  DistSource{Dist: stats.NewExponential(0.1)},
		Seed:    1,
	})
	res := c.RunDetailed(reissue.None{})
	if got := res.Log.Len(); got != 5000 {
		t.Fatalf("log has %d records", got)
	}
	if res.ReissueRate != 0 {
		t.Fatalf("reissue rate = %v", res.ReissueRate)
	}
	s := stats.Summarize(res.Log.ResponseTimes())
	if math.Abs(s.Mean-10)/10 > 0.05 {
		t.Fatalf("mean response %v, want ~10 (the service mean)", s.Mean)
	}
	if !math.IsNaN(res.Utilization) {
		t.Fatalf("infinite-server utilization = %v, want NaN", res.Utilization)
	}
}

func TestQueueingUtilizationMatchesTarget(t *testing.T) {
	dist := stats.NewExponential(0.1) // mean 10
	for _, rho := range []float64{0.2, 0.5} {
		c := mustCluster(t, Config{
			Servers:     10,
			ArrivalRate: ArrivalRateForUtilization(rho, 10, dist.Mean()),
			Queries:     30000,
			Warmup:      3000,
			Source:      DistSource{Dist: dist},
			Seed:        2,
		})
		res := c.RunDetailed(reissue.None{})
		if math.Abs(res.Utilization-rho) > 0.05 {
			t.Errorf("rho=%v: measured utilization %v", rho, res.Utilization)
		}
	}
}

func TestQueueingAddsDelay(t *testing.T) {
	dist := stats.NewExponential(0.1)
	c := mustCluster(t, Config{
		Servers:     10,
		ArrivalRate: ArrivalRateForUtilization(0.6, 10, dist.Mean()),
		Queries:     20000,
		Warmup:      2000,
		Source:      DistSource{Dist: dist},
		Seed:        3,
	})
	res := c.RunDetailed(reissue.None{})
	meanResp := stats.Summarize(res.Log.ResponseTimes()).Mean
	if meanResp <= dist.Mean()*1.05 {
		t.Fatalf("mean response %v shows no queueing delay over service mean %v",
			meanResp, dist.Mean())
	}
}

func TestSingleDReissueRateMatchesBudget(t *testing.T) {
	// SingleD(d) reissues exactly the queries still outstanding at d;
	// with response == service (infinite servers), the measured rate
	// must equal Pr(X > d).
	dist := stats.NewExponential(0.1)
	d := dist.Quantile(0.9) // Pr(X > d) = 0.1
	c := mustCluster(t, Config{
		Queries: 40000,
		Source:  DistSource{Dist: dist},
		Seed:    4,
	})
	res := c.RunDetailed(reissue.SingleD{D: d})
	if math.Abs(res.ReissueRate-0.1) > 0.01 {
		t.Fatalf("SingleD reissue rate %v, want ~0.1", res.ReissueRate)
	}
}

func TestSingleRReissueRateMatchesBudget(t *testing.T) {
	dist := stats.NewExponential(0.1)
	d := dist.Quantile(0.8) // Pr(X > d) = 0.2
	q := 0.5                // budget = 0.1
	c := mustCluster(t, Config{
		Queries: 40000,
		Source:  DistSource{Dist: dist},
		Seed:    5,
	})
	res := c.RunDetailed(reissue.SingleR{D: d, Q: q})
	if math.Abs(res.ReissueRate-0.1) > 0.01 {
		t.Fatalf("SingleR reissue rate %v, want ~0.1", res.ReissueRate)
	}
}

func TestReissueReducesTailOnIndependentWorkload(t *testing.T) {
	dist := stats.NewPareto(1.1, 2)
	c := mustCluster(t, Config{
		Queries: 40000,
		Source:  DistSource{Dist: dist},
		Seed:    6,
	})
	base := c.RunDetailed(reissue.None{})
	baseP95 := metrics.TailLatency(base.Log.ResponseTimes(), 95)

	// Reissue at the 85th percentile with probability chosen to spend
	// a 10% budget, the regime of Figure 3.
	d := dist.Quantile(0.85)
	res := c.RunDetailed(reissue.SingleR{D: d, Q: 0.1 / 0.15})
	p95 := metrics.TailLatency(res.Log.ResponseTimes(), 95)
	if p95 >= baseP95 {
		t.Fatalf("SingleR did not reduce P95: %v >= %v", p95, baseP95)
	}
	// The paper's Figure 3a shows roughly 2x at a 10% budget on the
	// Independent workload; require at least 1.4x.
	if ratio := baseP95 / p95; ratio < 1.4 {
		t.Errorf("P95 reduction ratio %v below expected", ratio)
	}
}

func TestImmediateReissueOverloadsHighUtilization(t *testing.T) {
	// Immediate reissue doubles the load; at 60% base utilization the
	// system saturates and the tail explodes — the phenomenon that
	// motivates delayed reissue (Section 1).
	dist := stats.NewExponential(0.1)
	cfg := Config{
		Servers:     10,
		ArrivalRate: ArrivalRateForUtilization(0.6, 10, dist.Mean()),
		Queries:     20000,
		Warmup:      2000,
		Source:      DistSource{Dist: dist},
		Seed:        7,
	}
	c := mustCluster(t, cfg)
	base := c.RunDetailed(reissue.None{})
	baseP95 := metrics.TailLatency(base.Log.ResponseTimes(), 95)
	imm := c.RunDetailed(reissue.Immediate{N: 1})
	immP95 := metrics.TailLatency(imm.Log.ResponseTimes(), 95)
	if immP95 <= baseP95 {
		t.Fatalf("immediate reissue at 60%% util should hurt: %v <= %v", immP95, baseP95)
	}
}

func TestImmediateReissueHelpsAtLowUtilization(t *testing.T) {
	dist := stats.NewPareto(1.1, 2)
	cfg := Config{
		Servers:     10,
		ArrivalRate: ArrivalRateForUtilization(0.1, 10, dist.Mean()),
		Queries:     20000,
		Warmup:      2000,
		Source:      DistSource{Dist: dist},
		Seed:        8,
	}
	c := mustCluster(t, cfg)
	base := c.RunDetailed(reissue.None{})
	baseP95 := metrics.TailLatency(base.Log.ResponseTimes(), 95)
	imm := c.RunDetailed(reissue.Immediate{N: 1})
	immP95 := metrics.TailLatency(imm.Log.ResponseTimes(), 95)
	if immP95 >= baseP95 {
		t.Fatalf("immediate reissue at 10%% util should help: %v >= %v", immP95, baseP95)
	}
}

func TestWarmupExcluded(t *testing.T) {
	dist := stats.NewExponential(1)
	c := mustCluster(t, Config{
		Servers:     2,
		ArrivalRate: 0.5,
		Queries:     100,
		Warmup:      50,
		Source:      DistSource{Dist: dist},
		Seed:        9,
	})
	res := c.RunDetailed(reissue.None{})
	if res.Log.Len() != 100 {
		t.Fatalf("measured %d queries, want 100 (warmup excluded)", res.Log.Len())
	}
	for _, rec := range res.Log.Records {
		if rec.ID < 50 {
			t.Fatalf("warmup query %d leaked into the log", rec.ID)
		}
	}
}

func TestRunsAreIndependentButDeterministic(t *testing.T) {
	mk := func(fresh bool) *Cluster {
		return mustCluster(t, Config{
			Queries:     1000,
			Source:      DistSource{Dist: stats.NewExponential(1)},
			Seed:        10,
			FreshPerRun: fresh,
		})
	}
	a1 := mk(false).RunDetailed(reissue.None{})
	a2 := mk(false).RunDetailed(reissue.None{})
	// Same seed, same run index: identical.
	for i := range a1.Log.Records {
		if a1.Log.Records[i] != a2.Log.Records[i] {
			t.Fatal("same-seed runs diverged")
		}
	}
	// Common random numbers (default): consecutive runs replay the
	// same sample path.
	c := mk(false)
	r1 := c.RunDetailed(reissue.None{})
	r2 := c.RunDetailed(reissue.None{})
	for i := range r1.Log.Records {
		if r1.Log.Records[i].Primary != r2.Log.Records[i].Primary {
			t.Fatal("common-random-numbers runs diverged")
		}
	}
	// FreshPerRun: consecutive runs use fresh randomness.
	cf := mk(true)
	f1 := cf.RunDetailed(reissue.None{})
	f2 := cf.RunDetailed(reissue.None{})
	same := 0
	for i := range f1.Log.Records {
		if f1.Log.Records[i].Primary == f2.Log.Records[i].Primary {
			same++
		}
	}
	if same == len(f1.Log.Records) {
		t.Fatal("FreshPerRun runs reused the identical sample stream")
	}
}

func TestTraceSourceReplaysDeterministically(t *testing.T) {
	src := &TraceSource{Times: []float64{1, 2, 3}}
	r := stats.NewRNG(1)
	var got []float64
	for i := 0; i < 5; i++ {
		p, y := src.Sample(r)
		if p != y {
			t.Fatalf("trace source primary %v != reissue %v", p, y)
		}
		got = append(got, p)
	}
	want := []float64{1, 2, 3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace sequence = %v", got)
		}
	}
	src.Reset()
	if p, _ := src.Sample(r); p != 1 {
		t.Fatalf("after Reset first sample = %v", p)
	}
}

func TestTraceSourceEmptyRejectedByConfig(t *testing.T) {
	_, err := New(Config{
		Queries: 100,
		Servers: 2, ArrivalRate: 1,
		Source: &TraceSource{},
		Seed:   1,
	})
	if err == nil {
		t.Fatal("New accepted an empty TraceSource")
	}
}

func TestClusterImplementsSystem(t *testing.T) {
	var _ reissue.System = (*Cluster)(nil)
	c := mustCluster(t, Config{
		Queries: 500,
		Source:  DistSource{Dist: stats.NewExponential(1)},
		Seed:    11,
	})
	run := c.Run(reissue.SingleR{D: 0.5, Q: 0.5})
	if len(run.Primary) != 500 || len(run.Query) != 500 {
		t.Fatalf("RunResult sizes: %d primary, %d query", len(run.Primary), len(run.Query))
	}
	if len(run.Reissue) == 0 || len(run.Pairs) != len(run.Reissue) {
		t.Fatalf("RunResult reissue bookkeeping: %d reissues, %d pairs",
			len(run.Reissue), len(run.Pairs))
	}
}

func TestCorrelatedSourceProducesCorrelation(t *testing.T) {
	// Exponential rather than Pareto(1.1): the latter has infinite
	// variance, making the Pearson coefficient meaningless.
	c := mustCluster(t, Config{
		Queries: 20000,
		Source:  DistSource{Dist: stats.NewExponential(0.5), Corr: 0.5},
		Seed:    12,
	})
	res := c.RunDetailed(reissue.SingleD{D: 0}) // reissue everything immediately
	var xs, ys []float64
	for _, p := range res.Pairs {
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
	}
	if len(xs) < 10000 {
		t.Fatalf("only %d pairs", len(xs))
	}
	corr := stats.PearsonCorrelation(xs, ys)
	if corr < 0.2 {
		t.Fatalf("measured correlation %v too weak for r=0.5", corr)
	}

	// And with Corr = 0 the correlation should be near zero.
	c0 := mustCluster(t, Config{
		Queries: 20000,
		Source:  DistSource{Dist: stats.NewExponential(0.5), Corr: 0},
		Seed:    13,
	})
	res0 := c0.RunDetailed(reissue.SingleD{D: 0})
	xs, ys = nil, nil
	for _, p := range res0.Pairs {
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
	}
	if corr0 := stats.PearsonCorrelation(xs, ys); math.Abs(corr0) > 0.1 {
		t.Fatalf("uncorrelated source measured correlation %v", corr0)
	}
}

func TestArrivalRateForUtilization(t *testing.T) {
	if got := ArrivalRateForUtilization(0.3, 10, 22); math.Abs(got-3.0/22) > 1e-12 {
		t.Fatalf("rate = %v", got)
	}
	for _, f := range []func(){
		func() { ArrivalRateForUtilization(0, 10, 1) },
		func() { ArrivalRateForUtilization(1, 10, 1) },
		func() { ArrivalRateForUtilization(0.5, 0, 1) },
		func() { ArrivalRateForUtilization(0.5, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid args did not panic")
				}
			}()
			f()
		}()
	}
}

// Property: for any policy and small workload, bookkeeping invariants
// hold — every response positive, response <= primary response, and
// pair count equals reissue count.
func TestSimulationInvariantsProperty(t *testing.T) {
	f := func(seed uint64, dRaw, qRaw uint8) bool {
		d := float64(dRaw) / 16
		q := float64(qRaw) / 255
		c, err := New(Config{
			Servers:     3,
			ArrivalRate: 0.5,
			Queries:     300,
			Warmup:      30,
			Source:      DistSource{Dist: stats.NewExponential(1), Corr: 0.5},
			Seed:        seed,
		})
		if err != nil {
			return false
		}
		res := c.RunDetailed(reissue.SingleR{D: d, Q: q})
		if len(res.Pairs) != len(res.Log.ReissueTimes()) {
			return false
		}
		for _, rec := range res.Log.Records {
			if rec.Response <= 0 || rec.Primary <= 0 {
				return false
			}
			if rec.Response > rec.Primary+1e-9 {
				return false
			}
			if rec.Reissued && rec.Response > rec.ReissueDelay+rec.Reissue+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
