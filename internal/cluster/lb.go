package cluster

import (
	"fmt"

	"repro/internal/stats"
)

// LoadBalancer selects the server a request is dispatched to. The
// paper's sensitivity study (Figure 5b) compares three strategies:
// uniform random, min-of-two (power of two choices), and min-of-all
// (join the shortest queue).
type LoadBalancer interface {
	// Pick returns the index of the chosen server. lengths[i] is the
	// instantaneous queue length (waiting + in service) of server i.
	// exclude is the index of a server to avoid (the primary's server
	// when dispatching a reissue to a different replica), or -1; it
	// is honored whenever more than one server exists.
	Pick(r *stats.RNG, lengths []int, exclude int) int
	String() string
}

// RandomLB dispatches uniformly at random — the paper's baseline
// "Random" strategy.
type RandomLB struct{}

// Pick selects a uniformly random non-excluded server.
func (RandomLB) Pick(r *stats.RNG, lengths []int, exclude int) int {
	n := len(lengths)
	if n == 1 || exclude < 0 || exclude >= n {
		return r.Intn(n)
	}
	i := r.Intn(n - 1)
	if i >= exclude {
		i++
	}
	return i
}

func (RandomLB) String() string { return "Random" }

// MinOfTwoLB samples two distinct servers and dispatches to the one
// with the shorter queue — the paper's "Min of Two".
type MinOfTwoLB struct{}

// Pick selects the shorter-queued of two random non-excluded servers.
func (MinOfTwoLB) Pick(r *stats.RNG, lengths []int, exclude int) int {
	n := len(lengths)
	a := (RandomLB{}).Pick(r, lengths, exclude)
	if candidates(n, exclude) < 2 {
		return a
	}
	b := a
	for b == a {
		b = (RandomLB{}).Pick(r, lengths, exclude)
	}
	if lengths[b] < lengths[a] {
		return b
	}
	return a
}

func (MinOfTwoLB) String() string { return "MinOfTwo" }

// MinOfAllLB dispatches to the globally shortest queue, breaking ties
// uniformly at random — the paper's "Min of All".
type MinOfAllLB struct{}

// Pick selects the server with the minimum queue length.
func (MinOfAllLB) Pick(r *stats.RNG, lengths []int, exclude int) int {
	n := len(lengths)
	best := -1
	ties := 0
	for i, l := range lengths {
		if i == exclude && n > 1 {
			continue
		}
		switch {
		case best == -1 || l < lengths[best]:
			best = i
			ties = 1
		case l == lengths[best]:
			// Reservoir-sample among ties so repeated dispatches do
			// not all pile onto the lowest index.
			ties++
			if r.Intn(ties) == 0 {
				best = i
			}
		}
	}
	return best
}

func (MinOfAllLB) String() string { return "MinOfAll" }

// HashedLB places copies exactly like the live hedging runtime
// (reissue/hedge/backend): query i's primary goes to hashReplica(i, n)
// — the same SplitMix64-style finalizer as backend.PrimaryReplica —
// and the query's k-th dispatched copy to (primary+k) mod n. The
// placement is fully deterministic in the query id, so a simulated
// shard reproduces not just the live marginal placement distribution
// but the exact per-query server choice; across shards of a sharded
// run it therefore reproduces the live system's placement correlation
// (query i hits the same replica index in every shard). Reissues are
// numbered by dispatch order, which equals the policy's delay slot
// for single-delay policies; multi-delay plans whose earlier coins
// fail diverge from the live slot routing by the skipped slots.
//
// HashedLB needs the query identity, which the LoadBalancer interface
// does not carry; it implements the optional queryPlacer capability,
// which the dispatch path checks first, and Pick panics if called
// directly.
type HashedLB struct{}

// queryPlacer is the optional query-aware placement capability: a
// LoadBalancer implementing it places copies by query identity
// (dispatch checks for it before falling back to Pick). reissues is
// the number of reissue copies dispatched for the query so far,
// counting this one — 0 for the primary.
type queryPlacer interface {
	placeQuery(queryID, reissues, servers int) int
}

// placeQuery implements the live runtime's routing rule: primary on
// hashReplica(id, n), dispatched copy k on (primary+k) mod n.
func (HashedLB) placeQuery(queryID, reissues, servers int) int {
	return (hashReplica(queryID, servers) + reissues) % servers
}

// Pick is never used for HashedLB — placement happens through
// queryPlacer, which knows the query id. It panics to fail loudly if
// a foreign caller routes through the interface.
func (HashedLB) Pick(r *stats.RNG, lengths []int, exclude int) int {
	panic("cluster: HashedLB placement is query-aware; Pick must not be called")
}

func (HashedLB) String() string { return "Hashed" }

// hashReplica mirrors backend.PrimaryReplica bit for bit: both are
// stats.Mix64 mod replicas (the package cannot import
// reissue/hedge/backend without inverting the dependency direction;
// TestHashReplicaMatchesPrimaryReplica pins the two against each
// other as well).
func hashReplica(i, replicas int) int {
	return int(stats.Mix64(uint64(i)) % uint64(replicas))
}

func candidates(n, exclude int) int {
	if exclude >= 0 && exclude < n {
		return n - 1
	}
	return n
}

// LoadBalancerByName returns the load balancer with the given name —
// used by the CLI tools.
func LoadBalancerByName(name string) (LoadBalancer, error) {
	switch name {
	case "random":
		return RandomLB{}, nil
	case "min2", "min-of-two":
		return MinOfTwoLB{}, nil
	case "minall", "min-of-all":
		return MinOfAllLB{}, nil
	case "hashed":
		return HashedLB{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown load balancer %q (want random, min2, minall, or hashed)", name)
	}
}
