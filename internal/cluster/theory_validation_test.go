package cluster

import (
	"math"
	"testing"

	"repro/internal/queueing"
	"repro/internal/stats"
	"repro/reissue"
)

// These tests hold the discrete-event simulator to closed-form
// queueing theory: if the substrate cannot reproduce M/M/1, M/M/c,
// and M/G/1, none of the paper's experiments on top of it mean
// anything.

// simulateQueue runs a no-reissue workload and returns the measured
// mean response time.
func simulateQueue(t *testing.T, servers int, lambda float64, dist stats.Dist, lb LoadBalancer, seed uint64) float64 {
	t.Helper()
	c, err := New(Config{
		Servers:     servers,
		ArrivalRate: lambda,
		Queries:     60000,
		Warmup:      6000,
		Source:      DistSource{Dist: dist},
		LB:          lb,
		Seed:        seed,
		FreshPerRun: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := c.RunDetailed(reissue.None{})
	return stats.Summarize(res.Log.ResponseTimes()).Mean
}

func TestSimulatorMatchesMM1(t *testing.T) {
	// One server, Poisson arrivals, exponential service: M/M/1.
	for _, rho := range []float64{0.3, 0.6, 0.8} {
		mu := 1.0
		lambda := rho * mu
		q, err := queueing.NewMM1(lambda, mu)
		if err != nil {
			t.Fatal(err)
		}
		got := simulateQueue(t, 1, lambda, stats.NewExponential(mu), nil, 101)
		want := q.MeanResponse()
		if math.Abs(got-want)/want > 0.08 {
			t.Errorf("rho=%v: simulated mean response %v, M/M/1 predicts %v",
				rho, got, want)
		}
	}
}

func TestSimulatorMatchesMG1Deterministic(t *testing.T) {
	// M/D/1: deterministic service halves the M/M/1 queueing delay.
	const lambda, meanS = 0.7, 1.0
	q, err := queueing.NewMG1(lambda, meanS, meanS*meanS)
	if err != nil {
		t.Fatal(err)
	}
	got := simulateQueue(t, 1, lambda, stats.Deterministic{Value: meanS}, nil, 103)
	want := q.MeanResponse()
	if math.Abs(got-want)/want > 0.08 {
		t.Errorf("M/D/1 simulated %v, theory %v", got, want)
	}
}

func TestSimulatorMatchesMG1LogNormal(t *testing.T) {
	// M/G/1 with log-normal service: E[S^2] = exp(2mu + 2sigma^2).
	const lambda = 0.12
	ln := stats.NewLogNormal(1, 0.7)
	meanS := ln.Mean()
	secondS := math.Exp(2*ln.Mu + 2*ln.Sigma*ln.Sigma)
	q, err := queueing.NewMG1(lambda, meanS, secondS)
	if err != nil {
		t.Fatal(err)
	}
	got := simulateQueue(t, 1, lambda, ln, nil, 107)
	want := q.MeanResponse()
	if math.Abs(got-want)/want > 0.10 {
		t.Errorf("M/G/1(lognormal) simulated %v, PK predicts %v", got, want)
	}
}

func TestSimulatorMatchesMMCWithSharedQueueApprox(t *testing.T) {
	// Our servers have private queues, so min-of-all dispatch (join
	// the shortest queue) is the closest realization of M/M/c. JSQ is
	// known to perform close to (slightly worse than) the central
	// queue; require the simulated mean to land between the M/M/c
	// prediction and the random-dispatch (independent M/M/1s) bound.
	const c0, mu = 10, 1.0
	for _, rho := range []float64{0.5, 0.7} {
		lambda := rho * mu * c0
		mmc, err := queueing.NewMMC(lambda, mu, c0)
		if err != nil {
			t.Fatal(err)
		}
		mm1, err := queueing.NewMM1(rho*mu, mu)
		if err != nil {
			t.Fatal(err)
		}
		got := simulateQueue(t, c0, lambda, stats.NewExponential(mu), MinOfAllLB{}, 109)
		lower := mmc.MeanResponse()
		upper := mm1.MeanResponse()
		if got < lower*0.95 || got > upper*1.05 {
			t.Errorf("rho=%v: JSQ simulated %v outside [M/M/c %v, M/M/1 %v]",
				rho, got, lower, upper)
		}
	}
}

func TestSimulatorRandomDispatchMatchesIndependentMM1(t *testing.T) {
	// Random dispatch over c servers decomposes into c independent
	// M/M/1 queues at per-server rate lambda/c.
	const c0, mu, rho = 10, 1.0, 0.6
	lambda := rho * mu * c0
	mm1, err := queueing.NewMM1(rho*mu, mu)
	if err != nil {
		t.Fatal(err)
	}
	got := simulateQueue(t, c0, lambda, stats.NewExponential(mu), RandomLB{}, 113)
	want := mm1.MeanResponse()
	if math.Abs(got-want)/want > 0.08 {
		t.Errorf("random dispatch simulated %v, independent M/M/1 predicts %v", got, want)
	}
}
