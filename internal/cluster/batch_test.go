package cluster

import (
	"testing"

	"repro/internal/des"
	"repro/internal/sched"
	"repro/reissue"
)

// batchServer builds a Batch-discipline server that records launched
// batch memberships (by query id) and completion times.
func batchServer(bcfg sched.BatchConfig, sim *des.Sim, batches *[][]int, doneAt *map[int]float64) *server {
	return newServer(0, Batch, bcfg, sim,
		func(r *request, now float64) { (*doneAt)[r.q.id] = now },
		func(_ int, members []*request) {
			ids := make([]int, len(members))
			for i, m := range members {
				ids[i] = m.q.id
			}
			*batches = append(*batches, ids)
		})
}

// TestServerBatchCoalescesOnFill pins the fill path: with Size=2 and a
// long linger, the second arrival launches the batch immediately, and
// the batch holds the server for the cost model's time (zero cost
// model: the slowest member's solo time).
func TestServerBatchCoalescesOnFill(t *testing.T) {
	sim := des.New()
	var batches [][]int
	doneAt := map[int]float64{}
	s := batchServer(sched.BatchConfig{Size: 2, LingerMS: 50}, sim, &batches, &doneAt)
	a := mkReq(0, 10, false, 0)
	b := mkReq(1, 4, false, 0)
	sim.At(0, func(now float64) { s.Enqueue(a, now) })
	sim.At(1, func(now float64) { s.Enqueue(b, now) })
	sim.Run()
	if len(batches) != 1 || len(batches[0]) != 2 {
		t.Fatalf("batches = %v, want one batch of 2", batches)
	}
	// Launch at t=1 (fill), service = max(10, 4) = 10 under the zero
	// cost model; both members complete together at t=11.
	if doneAt[0] != 11 || doneAt[1] != 11 {
		t.Fatalf("completions = %v, want both at 11", doneAt)
	}
}

// TestServerBatchLingerExpiry pins the window path: an underfull batch
// launches when the linger window (opened at first admission to an
// idle server) expires.
func TestServerBatchLingerExpiry(t *testing.T) {
	sim := des.New()
	var batches [][]int
	doneAt := map[int]float64{}
	s := batchServer(sched.BatchConfig{Size: 3, LingerMS: 5}, sim, &batches, &doneAt)
	sim.At(0, func(now float64) { s.Enqueue(mkReq(0, 2, false, 0), now) })
	sim.Run()
	// Window opens at t=0, expires at t=5, solo batch completes at 7.
	if doneAt[0] != 7 {
		t.Fatalf("completion at %v, want 7 (linger 5 + service 2)", doneAt[0])
	}
	if len(batches) != 1 || len(batches[0]) != 1 {
		t.Fatalf("batches = %v, want one solo batch", batches)
	}
}

// TestServerBatchZeroLingerImmediate pins Linger=0: an idle server
// launches immediately with whatever is queued, so back-to-back
// arrivals run as consecutive solo batches.
func TestServerBatchZeroLingerImmediate(t *testing.T) {
	sim := des.New()
	var batches [][]int
	doneAt := map[int]float64{}
	s := batchServer(sched.BatchConfig{Size: 4}, sim, &batches, &doneAt)
	sim.At(0, func(now float64) { s.Enqueue(mkReq(0, 3, false, 0), now) })
	// Arrives mid-service of batch 1; served in a second batch with
	// the request arriving during the same hold.
	sim.At(1, func(now float64) { s.Enqueue(mkReq(1, 2, false, 0), now) })
	sim.At(2, func(now float64) { s.Enqueue(mkReq(2, 2, false, 0), now) })
	sim.Run()
	if doneAt[0] != 3 {
		t.Fatalf("first completion at %v, want 3 (immediate launch)", doneAt[0])
	}
	if len(batches) != 2 || len(batches[1]) != 2 {
		t.Fatalf("batches = %v, want [[0] [1 2]]", batches)
	}
	if doneAt[1] != 5 || doneAt[2] != 5 {
		t.Fatalf("second batch completions = %v, want both at 5", doneAt)
	}
}

// TestServerBatchCostModel pins the size-dependent hold: Scale and
// PerItem inflate the batch beyond its slowest member.
func TestServerBatchCostModel(t *testing.T) {
	sim := des.New()
	var batches [][]int
	doneAt := map[int]float64{}
	s := batchServer(sched.BatchConfig{
		Size: 2, Cost: sched.BatchCost{Scale: 0.1, PerItem: 2},
	}, sim, &batches, &doneAt)
	sim.At(0, func(now float64) {
		s.Enqueue(mkReq(0, 10, false, 0), now)
		s.Enqueue(mkReq(1, 4, false, 0), now)
	})
	sim.Run()
	// Same-instant pair: the first Enqueue launches a solo batch
	// (Linger=0), the second runs alone after it: 10 then 10+4.
	if doneAt[0] != 10 || doneAt[1] != 14 {
		t.Fatalf("completions = %v, want 10 and 14", doneAt)
	}
	if s.busyTime != 14 {
		t.Fatalf("busyTime = %v, want 14", s.busyTime)
	}
}

// TestClusterBatchMembership runs the full simulator under the Batch
// discipline on an explicit arrival schedule with an
// always-reissue-immediately policy on one server, pinning the
// hedge-lands-in-own-batch hazard: with R=1 every hedged copy routes
// to its primary's replica, and a hedge dispatched while the batch
// still lingers joins the primary's own batch.
func TestClusterBatchMembership(t *testing.T) {
	c, err := New(Config{
		Servers:    1,
		Queries:    3,
		Discipline: Batch,
		Batch:      sched.BatchConfig{Size: 4, LingerMS: 5},
		Source:     &TraceSource{Times: []float64{20, 20, 20}},
		// Arrivals well inside one linger window.
		ArrivalTimes: []float64{0, 1, 2},
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := c.RunDetailed(reissue.SingleD{D: 0})
	if res.ReissueRate != 1 {
		t.Fatalf("reissue rate = %v, want 1 (SingleD delay 0)", res.ReissueRate)
	}
	if len(res.Batches) != 2 {
		t.Fatalf("batches = %v, want 2 (size-4 fill, then the leftovers)", res.Batches)
	}
	b := res.Batches[0]
	want := []sched.Member{
		{Query: 0}, {Query: 0, Reissue: true},
		{Query: 1}, {Query: 1, Reissue: true},
	}
	if len(b.Members) != len(want) {
		t.Fatalf("batch 1 members = %v, want %v", b.Members, want)
	}
	for i := range want {
		if b.Members[i] != want[i] {
			t.Fatalf("batch 1 members = %v, want %v", b.Members, want)
		}
	}
	rest := res.Batches[1].Members
	if len(rest) != 2 || rest[0] != (sched.Member{Query: 2}) || rest[1] != (sched.Member{Query: 2, Reissue: true}) {
		t.Fatalf("batch 2 members = %v, want query 2's pair", rest)
	}
}

// TestClusterArrivalTimesValidation pins the explicit-schedule
// validation: short schedules, decreasing instants, and FanOut
// combinations are rejected.
func TestClusterArrivalTimesValidation(t *testing.T) {
	base := Config{
		Servers: 1, Queries: 2, Discipline: Batch,
		Batch:  sched.BatchConfig{Size: 2},
		Source: &TraceSource{Times: []float64{1}},
	}
	cfg := base
	cfg.ArrivalTimes = []float64{0}
	if _, err := New(cfg); err == nil {
		t.Error("short ArrivalTimes accepted")
	}
	cfg = base
	cfg.ArrivalTimes = []float64{1, 0}
	if _, err := New(cfg); err == nil {
		t.Error("decreasing ArrivalTimes accepted")
	}
	cfg = base
	cfg.Queries, cfg.FanOut = 2, 2
	cfg.ArrivalTimes = []float64{0, 1}
	if _, err := New(cfg); err == nil {
		t.Error("ArrivalTimes + FanOut accepted")
	}
	cfg = base
	cfg.Batch = sched.BatchConfig{}
	if _, err := New(cfg); err == nil {
		t.Error("Batch discipline with size 0 accepted")
	}
}
