package cluster

import (
	"testing"

	"repro/internal/des"
	"repro/internal/sched"
)

// newTestServer builds a server with no batch config and no batch log
// — the single-serve disciplines these tests exercise.
func newTestServer(d Discipline, sim *des.Sim, onComplete func(*request, float64)) *server {
	return newServer(0, d, sched.BatchConfig{}, sim, onComplete, nil)
}

// collectOrder runs requests through a server and records completion
// order by query id.
func runServer(t *testing.T, d Discipline, reqs []*request, arrivals []float64) []int {
	t.Helper()
	var order []int
	sim := des.New()
	s := newTestServer(d, sim, func(r *request, now float64) {
		order = append(order, r.q.id)
	})
	for i, r := range reqs {
		r := r
		sim.At(arrivals[i], func(now float64) { s.Enqueue(r, now) })
	}
	sim.Run()
	return order
}

func mkReq(id int, service float64, reissue bool, conn int) *request {
	return &request{q: &query{id: id}, service: service, reissue: reissue, conn: conn}
}

func TestServerFIFOOrder(t *testing.T) {
	reqs := []*request{
		mkReq(0, 10, false, 0),
		mkReq(1, 1, false, 0),
		mkReq(2, 1, false, 0),
	}
	// All arrive while the first is in service: FIFO completes 0,1,2.
	order := runServer(t, FIFO, reqs, []float64{0, 1, 2})
	want := []int{0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("FIFO order = %v", order)
		}
	}
}

func TestServerPrioFIFOServesPrimariesFirst(t *testing.T) {
	reqs := []*request{
		mkReq(0, 10, false, 0), // in service
		mkReq(1, 1, true, 0),   // reissue, queued first
		mkReq(2, 1, false, 0),  // primary, queued second
	}
	order := runServer(t, PrioFIFO, reqs, []float64{0, 1, 2})
	// Primary 2 must jump the queued reissue 1.
	want := []int{0, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("PrioFIFO order = %v, want %v", order, want)
		}
	}
}

func TestServerPrioLIFOServesNewestReissue(t *testing.T) {
	reqs := []*request{
		mkReq(0, 10, false, 0), // in service
		mkReq(1, 1, true, 0),
		mkReq(2, 1, true, 0),
		mkReq(3, 1, true, 0),
	}
	order := runServer(t, PrioLIFO, reqs, []float64{0, 1, 2, 3})
	// Reissues drain newest-first: 3, 2, 1.
	want := []int{0, 3, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("PrioLIFO order = %v, want %v", order, want)
		}
	}
}

func TestServerRoundRobinAlternatesConnections(t *testing.T) {
	reqs := []*request{
		mkReq(0, 10, false, 0), // in service
		mkReq(1, 1, false, 1),  // conn 1
		mkReq(2, 1, false, 1),  // conn 1
		mkReq(3, 1, false, 2),  // conn 2
	}
	order := runServer(t, RoundRobin, reqs, []float64{0, 1, 2, 3})
	// After 0, round-robin alternates between conns 1 and 2:
	// 1 (conn1), 3 (conn2), 2 (conn1).
	want := []int{0, 1, 3, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("RoundRobin order = %v, want %v", order, want)
		}
	}
}

func TestServerRoundRobinHeadOfLineBlocking(t *testing.T) {
	// A single long request on one connection delays every other
	// connection — the Redis "query of death" effect.
	var doneAt []float64
	sim := des.New()
	s := newTestServer(RoundRobin, sim, func(r *request, now float64) {
		doneAt = append(doneAt, now)
	})
	long := mkReq(0, 100, false, 0)
	short := mkReq(1, 1, false, 1)
	sim.At(0, func(now float64) { s.Enqueue(long, now) })
	sim.At(1, func(now float64) { s.Enqueue(short, now) })
	sim.Run()
	if doneAt[1] != 101 {
		t.Fatalf("short request completed at %v, want 101 (blocked)", doneAt[1])
	}
}

func TestServerLenCountsInService(t *testing.T) {
	sim := des.New()
	s := newTestServer(FIFO, sim, func(*request, float64) {})
	if s.Len() != 0 {
		t.Fatalf("idle Len = %d", s.Len())
	}
	sim.At(0, func(now float64) {
		s.Enqueue(mkReq(0, 5, false, 0), now)
		s.Enqueue(mkReq(1, 5, false, 0), now)
	})
	sim.RunUntil(1)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (1 in service + 1 waiting)", s.Len())
	}
	sim.RunUntil(6)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after first completion", s.Len())
	}
}

func TestServerBusyTimeAccumulates(t *testing.T) {
	sim := des.New()
	s := newTestServer(FIFO, sim, func(*request, float64) {})
	sim.At(0, func(now float64) {
		s.Enqueue(mkReq(0, 5, false, 0), now)
		s.Enqueue(mkReq(1, 7, false, 0), now)
	})
	sim.Run()
	if s.busyTime != 12 {
		t.Fatalf("busyTime = %v, want 12", s.busyTime)
	}
}

func TestDisciplineStringsAndParse(t *testing.T) {
	for name, want := range map[string]Discipline{
		"fifo": FIFO, "prio-fifo": PrioFIFO, "prio-lifo": PrioLIFO,
		"round-robin": RoundRobin, "rr": RoundRobin,
	} {
		got, err := DisciplineByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Errorf("%s -> %v, want %v", name, got, want)
		}
	}
	if _, err := DisciplineByName("nope"); err == nil {
		t.Error("bad discipline accepted")
	}
	for _, d := range []Discipline{FIFO, PrioFIFO, PrioLIFO, RoundRobin, Discipline(99)} {
		if d.String() == "" {
			t.Errorf("empty String for %d", int(d))
		}
	}
}
