package cluster

import (
	"repro/internal/des"
	"repro/internal/sched"
)

// Discipline selects how a server orders the requests waiting in its
// queue. It is the shared serving-discipline core's type
// (internal/sched): the simulator and the live replicas
// (reissue/hedge/backend) drive the SAME pure queue/batch scheduler,
// so the disciplines are defined once and aliased here for the
// simulator's historical callers.
type Discipline = sched.Discipline

const (
	// FIFO is a single first-in-first-out queue that does not
	// distinguish primary from reissue requests ("Baseline FIFO").
	FIFO = sched.FIFO
	// PrioFIFO keeps separate FIFO queues for primary and reissue
	// requests and serves reissues only when no primary waits
	// ("Prioritized FIFO").
	PrioFIFO = sched.PrioFIFO
	// PrioLIFO is PrioFIFO with the reissue queue served in LIFO
	// order ("Prioritized LIFO").
	PrioLIFO = sched.PrioLIFO
	// RoundRobin serves one request per client connection in
	// round-robin order — the Redis event-loop model from Section
	// 6.2, where a single long request delays every connection.
	RoundRobin = sched.RoundRobin
	// Batch coalesces queued requests into batches of up to
	// Config.Batch.Size served together with a size-dependent
	// service time — the inference-serving regime. See
	// sched.BatchConfig.
	Batch = sched.Batch
)

// DisciplineByName parses a discipline name — used by the CLI tools.
func DisciplineByName(name string) (Discipline, error) {
	return sched.DisciplineByName(name)
}

// request is one dispatched copy of a query: the primary or a
// reissue. Requests are arena-allocated (reqArena) and recycled
// across runs; idx is the record's stable arena index, used as the
// payload of infinite-server completion events.
type request struct {
	q        *query
	idx      int32   // arena index
	service  float64 // service time on the server
	dispatch float64 // absolute dispatch time
	conn     int     // client connection (round-robin discipline)
	reissue  bool
	// cancelled marks a queued request withdrawn after its query
	// already completed (the "tied requests" extension). Cancelled
	// requests are dropped lazily when popped; a request already in
	// service runs to completion (no preemption).
	cancelled bool
	inService bool
	// Chaos-mirror fields, untouched (zero) without Config.Faults:
	// server is the server that accepted the copy (for the breaker's
	// success report at completion), slowEdge the Slow-fault inflation
	// factor, and deferred marks a completion report already rescheduled
	// to its stretched instant.
	server   int32
	slowEdge float64
	deferred bool
}

// server is a single-threaded simulated server. Its queue state lives
// entirely in the shared scheduling core (sched.Queue); the server
// owns only the des-time machinery — when service starts, how long a
// batch holds the server, when the linger window expires. Under the
// single-serve disciplines it serves exactly one request at a time;
// under Batch it serves whole batches back to back. Servers are
// created once per Cluster and recycled run over run (reset); the
// service-completion event is a single shared func value, so serving
// a request schedules no closures.
type server struct {
	id         int
	discipline Discipline
	bcfg       sched.BatchConfig
	sim        *des.Sim

	q     *sched.Queue[*request]
	busy  bool
	cur   *request   // request in service (single-serve disciplines)
	batch []*request // batch in service (Batch discipline)

	// epoch invalidates armed linger events: it increments at every
	// batch launch, and a linger event carrying a stale epoch is a
	// no-op. lingerArmed keeps at most one live linger event pending.
	epoch       int
	lingerArmed bool

	busyTime float64 // accumulated service time, for utilization

	// slowFactor multiplies the service time of requests starting
	// now; 1 when the server is healthy, Interference.Factor while a
	// slow period is active.
	slowFactor float64
	// baseSpeed is the server's static service-time multiplier
	// (Config.SpeedFactors); 1 for a nominal server.
	baseSpeed float64

	onComplete func(r *request, now float64)
	// onBatch reports a launched batch's membership (Batch discipline
	// only); nil disables the batch log.
	onBatch    func(id int, members []*request)
	completeEv des.ArgEvent // bound method value, allocated once
	lingerEv   des.ArgEvent
}

func newServer(id int, d Discipline, bcfg sched.BatchConfig, sim *des.Sim,
	onComplete func(*request, float64), onBatch func(int, []*request)) *server {
	s := &server{
		id: id, discipline: d, bcfg: bcfg, sim: sim,
		onComplete: onComplete, onBatch: onBatch,
		slowFactor: 1, baseSpeed: 1,
		q: sched.MustQueue[*request](sched.Config{Discipline: d, Batch: bcfg}),
	}
	s.completeEv = s.complete
	s.lingerEv = s.lingerFire
	return s
}

// reset returns the server to its idle boot state for a fresh run,
// keeping queue capacity.
func (s *server) reset() {
	s.busy = false
	s.cur = nil
	s.batch = s.batch[:0]
	s.epoch = 0
	s.lingerArmed = false
	s.q.Reset()
	s.busyTime = 0
	s.slowFactor = 1
	s.baseSpeed = 1
}

// Len returns the instantaneous queue length: waiting requests plus
// those in service (one under the single-serve disciplines, the batch
// membership under Batch). Load balancers use it as the server's load
// signal.
func (s *server) Len() int {
	n := s.q.Waiting()
	if s.busy {
		if s.discipline == Batch {
			n += len(s.batch)
		} else {
			n++
		}
	}
	return n
}

// Enqueue accepts a request at time now. Single-serve disciplines
// start service immediately when the server is idle; the Batch
// discipline always admits through the core and then decides whether
// a batch launches now (full, or zero linger) or the linger window
// arms.
func (s *server) Enqueue(r *request, now float64) {
	if s.discipline == Batch {
		s.q.Push(r, r.reissue, r.conn)
		if !s.busy {
			s.considerLaunch(now)
		}
		return
	}
	if !s.busy {
		s.start(r, now)
		return
	}
	s.q.Push(r, r.reissue, r.conn)
}

// pop removes and returns the next live request to serve, skipping
// lazily over cancelled ones; returns nil when nothing remains.
func (s *server) pop() *request {
	for {
		r, ok := s.q.Pop()
		if !ok {
			return nil
		}
		if !r.cancelled {
			return r
		}
	}
}

func (s *server) start(r *request, now float64) {
	s.busy = true
	s.cur = r
	svc := r.service * s.baseSpeed * s.slowFactor
	s.busyTime += svc
	r.inService = true
	s.sim.AfterArg(svc, s.completeEv, 0, 0)
}

// considerLaunch decides, for an idle batch server with new or
// leftover queue state, whether to launch now or linger: a batch
// launches immediately when Size requests wait (cancelled-but-queued
// copies count, exactly as they count in the live replica's window)
// or when the linger is zero; otherwise a single linger event arms at
// now+LingerMS.
func (s *server) considerLaunch(now float64) {
	w := s.q.Waiting()
	if w == 0 {
		return
	}
	if w >= s.bcfg.Size || s.bcfg.LingerMS == 0 {
		s.launchBatch(now)
		return
	}
	if !s.lingerArmed {
		s.lingerArmed = true
		s.sim.AfterArg(s.bcfg.LingerMS, s.lingerEv, s.epoch, 0)
	}
}

// lingerFire fires when a batch window expires. A stale epoch means
// the window's batch already launched (it filled to Size first).
func (s *server) lingerFire(now float64, epoch int, _ float64) {
	if epoch != s.epoch || s.busy {
		return
	}
	s.lingerArmed = false
	if s.q.Waiting() == 0 {
		return
	}
	s.launchBatch(now)
}

// launchBatch pops the batch membership from the core and holds the
// server for the size-dependent service time. Membership is the first
// Size live requests in admission order; if every popped request was
// cancelled the launch re-evaluates what remains.
func (s *server) launchBatch(now float64) {
	s.epoch++
	s.lingerArmed = false
	s.batch = s.q.PopBatch(s.batch[:0], s.bcfg.Size, requestLive)
	if len(s.batch) == 0 {
		s.considerLaunch(now)
		return
	}
	maxSvc := 0.0
	for _, r := range s.batch {
		r.inService = true
		if r.service > maxSvc {
			maxSvc = r.service
		}
	}
	svc := s.bcfg.Cost.Service(maxSvc, len(s.batch)) * s.baseSpeed * s.slowFactor
	s.busyTime += svc
	s.busy = true
	if s.onBatch != nil {
		s.onBatch(s.id, s.batch)
	}
	s.sim.AfterArg(svc, s.completeEv, 0, 0)
}

func requestLive(r *request) bool { return !r.cancelled }

// complete fires when the in-service request (or batch) finishes:
// report it, then start the next queued work, chaining service back
// to back.
func (s *server) complete(now float64, _ int, _ float64) {
	if s.discipline == Batch {
		s.busy = false
		for _, r := range s.batch {
			s.onComplete(r, now)
		}
		s.batch = s.batch[:0]
		s.considerLaunch(now)
		return
	}
	r := s.cur
	s.cur = nil
	s.onComplete(r, now)
	s.busy = false
	if next := s.pop(); next != nil {
		s.start(next, now)
	}
}
