package cluster

import (
	"fmt"

	"repro/internal/des"
)

// Discipline selects how a server orders the requests waiting in its
// queue. The paper's Figure 5c compares FIFO against two prioritized
// schemes, and the Redis system experiment motivates the round-robin
// connection scheduler.
type Discipline int

const (
	// FIFO is a single first-in-first-out queue that does not
	// distinguish primary from reissue requests ("Baseline FIFO").
	FIFO Discipline = iota
	// PrioFIFO keeps separate FIFO queues for primary and reissue
	// requests and serves reissues only when no primary waits
	// ("Prioritized FIFO").
	PrioFIFO
	// PrioLIFO is PrioFIFO with the reissue queue served in LIFO
	// order ("Prioritized LIFO").
	PrioLIFO
	// RoundRobin serves one request per client connection in
	// round-robin order — the Redis event-loop model from Section
	// 6.2, where a single long request delays every connection.
	RoundRobin
)

func (d Discipline) String() string {
	switch d {
	case FIFO:
		return "FIFO"
	case PrioFIFO:
		return "PrioFIFO"
	case PrioLIFO:
		return "PrioLIFO"
	case RoundRobin:
		return "RoundRobin"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// DisciplineByName parses a discipline name — used by the CLI tools.
func DisciplineByName(name string) (Discipline, error) {
	switch name {
	case "fifo":
		return FIFO, nil
	case "prio-fifo":
		return PrioFIFO, nil
	case "prio-lifo":
		return PrioLIFO, nil
	case "round-robin", "rr":
		return RoundRobin, nil
	default:
		return 0, fmt.Errorf("cluster: unknown discipline %q (want fifo, prio-fifo, prio-lifo, or round-robin)", name)
	}
}

// request is one dispatched copy of a query: the primary or a
// reissue. Requests are arena-allocated (reqArena) and recycled
// across runs; idx is the record's stable arena index, used as the
// payload of infinite-server completion events.
type request struct {
	q        *query
	idx      int32   // arena index
	service  float64 // service time on the server
	dispatch float64 // absolute dispatch time
	conn     int     // client connection (round-robin discipline)
	reissue  bool
	// cancelled marks a queued request withdrawn after its query
	// already completed (the "tied requests" extension). Cancelled
	// requests are dropped lazily when popped; a request already in
	// service runs to completion (no preemption).
	cancelled bool
	inService bool
	// Chaos-mirror fields, untouched (zero) without Config.Faults:
	// server is the server that accepted the copy (for the breaker's
	// success report at completion), slowEdge the Slow-fault inflation
	// factor, and deferred marks a completion report already rescheduled
	// to its stretched instant.
	server   int32
	slowEdge float64
	deferred bool
}

// server is a single-threaded simulated server: it serves exactly one
// request at a time and queues the rest per its discipline. Servers
// are created once per Cluster and recycled run over run (reset); the
// service-completion event is a single shared func value, so serving
// a request schedules no closures.
type server struct {
	id         int
	discipline Discipline
	sim        *des.Sim

	busy    bool
	cur     *request // request in service, valid while busy
	waiting int      // total queued (excluding in-service)

	// FIFO / prioritized queues. fifo doubles as the primary queue
	// for the prioritized disciplines.
	fifo []*request
	reis []*request

	// Round-robin per-connection queues.
	conns  map[int][]*request
	order  []int // round-robin visit order of connections with traffic
	cursor int

	busyTime float64 // accumulated service time, for utilization

	// slowFactor multiplies the service time of requests starting
	// now; 1 when the server is healthy, Interference.Factor while a
	// slow period is active.
	slowFactor float64
	// baseSpeed is the server's static service-time multiplier
	// (Config.SpeedFactors); 1 for a nominal server.
	baseSpeed float64

	onComplete func(r *request, now float64)
	completeEv des.ArgEvent // bound method value, allocated once
}

func newServer(id int, d Discipline, sim *des.Sim, onComplete func(*request, float64)) *server {
	s := &server{id: id, discipline: d, sim: sim, onComplete: onComplete, slowFactor: 1, baseSpeed: 1}
	s.completeEv = s.complete
	if d == RoundRobin {
		s.conns = make(map[int][]*request)
		// Start before the first connection so the initial pop visits
		// connections in arrival order.
		s.cursor = -1
	}
	return s
}

// reset returns the server to its idle boot state for a fresh run,
// keeping queue capacity.
func (s *server) reset() {
	s.busy = false
	s.cur = nil
	s.waiting = 0
	s.fifo = s.fifo[:0]
	s.reis = s.reis[:0]
	if s.discipline == RoundRobin {
		clear(s.conns)
		s.order = s.order[:0]
		s.cursor = -1
	}
	s.busyTime = 0
	s.slowFactor = 1
	s.baseSpeed = 1
}

// Len returns the instantaneous queue length: waiting requests plus
// the one in service. Load balancers use it as the server's load
// signal.
func (s *server) Len() int {
	n := s.waiting
	if s.busy {
		n++
	}
	return n
}

// Enqueue accepts a request at time now, starting service immediately
// if the server is idle.
func (s *server) Enqueue(r *request, now float64) {
	if !s.busy {
		s.start(r, now)
		return
	}
	s.waiting++
	switch s.discipline {
	case FIFO:
		s.fifo = append(s.fifo, r)
	case PrioFIFO, PrioLIFO:
		if r.reissue {
			s.reis = append(s.reis, r)
		} else {
			s.fifo = append(s.fifo, r)
		}
	case RoundRobin:
		if _, ok := s.conns[r.conn]; !ok {
			s.order = append(s.order, r.conn)
		}
		s.conns[r.conn] = append(s.conns[r.conn], r)
	}
}

// pop removes and returns the next live request to serve, skipping
// lazily over cancelled ones; returns nil when nothing remains.
func (s *server) pop() *request {
	for {
		r := s.popAny()
		if r == nil {
			return nil
		}
		if !r.cancelled {
			return r
		}
	}
}

// popAny removes and returns the next queued request (cancelled or
// not), or nil.
func (s *server) popAny() *request {
	if s.waiting == 0 {
		return nil
	}
	s.waiting--
	switch s.discipline {
	case FIFO:
		r := s.fifo[0]
		s.fifo = s.fifo[1:]
		return r
	case PrioFIFO, PrioLIFO:
		if len(s.fifo) > 0 {
			r := s.fifo[0]
			s.fifo = s.fifo[1:]
			return r
		}
		if s.discipline == PrioLIFO {
			r := s.reis[len(s.reis)-1]
			s.reis = s.reis[:len(s.reis)-1]
			return r
		}
		r := s.reis[0]
		s.reis = s.reis[1:]
		return r
	case RoundRobin:
		// Advance the cursor to the next connection with pending
		// requests, serving one request per connection per turn.
		for i := 0; i < len(s.order); i++ {
			s.cursor = (s.cursor + 1) % len(s.order)
			conn := s.order[s.cursor]
			if q := s.conns[conn]; len(q) > 0 {
				r := q[0]
				s.conns[conn] = q[1:]
				return r
			}
		}
	}
	return nil
}

func (s *server) start(r *request, now float64) {
	s.busy = true
	s.cur = r
	svc := r.service * s.baseSpeed * s.slowFactor
	s.busyTime += svc
	r.inService = true
	s.sim.AfterArg(svc, s.completeEv, 0, 0)
}

// complete fires when the in-service request finishes: report it,
// then start the next queued request, chaining service back to back.
func (s *server) complete(now float64, _ int, _ float64) {
	r := s.cur
	s.cur = nil
	s.onComplete(r, now)
	s.busy = false
	if next := s.pop(); next != nil {
		s.start(next, now)
	}
}
