// Package cluster is the discrete-event cluster simulator used for
// every experiment in the repository: n single-threaded servers with
// configurable queue disciplines, a load balancer, an open-loop
// Poisson arrival process, and a reissue controller that executes any
// reissue.Policy — checking, like the paper's client harness, whether a
// query already completed before actually sending its reissue.
//
// The simulator replaces the paper's physical 10-server testbed; see
// DESIGN.md for the substitution argument.
//
// The hot path is allocation-free in steady state: a Cluster pools
// its event list, per-query records, dispatched-copy arena, and
// server queues across runs, and every simulation event is a typed
// des.ArgEvent rather than a fresh closure. Repeated Run calls (the
// adaptive optimizer's trials, figure sweeps) therefore cost no
// per-query allocations; only the measurement set returned to the
// caller is freshly allocated, pre-sized from Config. A Cluster is
// NOT safe for concurrent Run calls — run one simulation at a time
// per Cluster (this was always the case; the pooling makes it load-
// bearing).
package cluster

import (
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/rangequery"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/reissue"
	"repro/reissue/hedge/fault"
)

// ServiceSource produces per-query service times. Sample returns the
// primary request's service time and the service time a reissue of
// the same query would have. Reset is called at the start of every
// run so trace-backed sources replay deterministically.
type ServiceSource interface {
	Sample(r *stats.RNG) (primary, reissue float64)
	Reset()
}

// DistSource draws service times from a distribution, with the
// paper's linear correlation model for reissues: Y = Corr*X + Z where
// Z is an independent draw (Section 5.1, Figure 4).
type DistSource struct {
	Dist stats.Dist
	Corr float64
}

// Sample draws X and Y = Corr*X + Z.
func (s DistSource) Sample(r *stats.RNG) (float64, float64) {
	x := s.Dist.Sample(r)
	return x, s.Corr*x + s.Dist.Sample(r)
}

// Reset is a no-op; distribution sources are stateless.
func (DistSource) Reset() {}

// TraceSource replays a fixed sequence of service times (for example,
// measured from the kvstore or searchengine workloads), cycling when
// exhausted. The reissue executes the same work as the primary, so it
// gets the same service time — the strongest form of service-time
// correlation, matching a replica re-executing an identical query.
type TraceSource struct {
	Times []float64
	next  int
}

// Sample returns the next recorded service time for both copies. An
// empty trace is a configuration error; Config validation (New)
// rejects it before any run starts.
func (s *TraceSource) Sample(*stats.RNG) (float64, float64) {
	t := s.Times[s.next]
	s.next = (s.next + 1) % len(s.Times)
	return t, t
}

// Reset rewinds the trace to the beginning.
func (s *TraceSource) Reset() { s.next = 0 }

// Config describes a simulated cluster and workload.
type Config struct {
	// Servers is the number of servers; 0 simulates infinitely many
	// (no queueing — the Independent and Correlated workload models).
	Servers int
	// ArrivalRate is the open-loop Poisson arrival rate in queries
	// per unit time. Ignored when Servers == 0.
	ArrivalRate float64
	// RateMultiplier optionally modulates the arrival rate over
	// simulated time (non-homogeneous Poisson by local rate): the
	// instantaneous rate at time t is ArrivalRate*RateMultiplier(t).
	// It models the diurnal/step load variation of the paper's
	// Section 4.4 "varying load" scenario. Must return positive
	// values; nil means constant rate.
	RateMultiplier func(t float64) float64
	// OnRequestComplete, when set, is invoked each time a request
	// copy finishes service, with whether it was a reissue, its
	// response time, and the simulation time. Online adapters use it
	// to observe the live response-time stream mid-run.
	OnRequestComplete func(reissue bool, responseTime, now float64)
	// Queries is the number of queries to simulate, excluding warmup.
	Queries int
	// FanOut groups queries into batches of this size that arrive
	// simultaneously, modelling a partitioned request that fans out
	// to FanOut sub-requests and completes when the slowest responds
	// — the paper's motivating aggregation pattern ("the slower
	// servers typically dominate the response time"). 0 or 1 means
	// independent queries. Queries and Warmup must be multiples of
	// FanOut; Result.FanOutResponses then carries the per-batch
	// max-response times.
	FanOut int
	// Warmup queries are simulated before measurement starts, letting
	// queues reach steady state. They are excluded from all metrics.
	Warmup int
	// Source generates service times.
	Source ServiceSource
	// LB selects servers; defaults to RandomLB.
	LB LoadBalancer
	// Discipline orders each server's queue.
	Discipline Discipline
	// Batch parametrizes the Batch discipline (batch size, linger
	// window, size-dependent cost model); ignored — and unvalidated —
	// under every other discipline.
	Batch sched.BatchConfig
	// Connections is the number of client connections (round-robin
	// discipline only); defaults to 20.
	Connections int
	// ArrivalTimes, when set, replaces the Poisson arrival process
	// with an explicit non-decreasing schedule: query i arrives at
	// ArrivalTimes[i] (warmup queries included). Length must be at
	// least Queries+Warmup and FanOut at most 1. The sim-vs-live
	// batch-agreement tests use it to replay the exact instants a live
	// driver used, making batch membership comparable query by query
	// rather than only statistically.
	ArrivalTimes []float64
	// Seed drives all randomness.
	Seed uint64
	// PolicySeed, when non-zero, re-derives the policy-coin stream
	// from Seed XOR PolicySeed instead of from Seed alone, leaving the
	// arrival, service, placement, and connection streams untouched.
	// The sharded composition (Sharded) uses it to give every shard
	// the identical arrival instants (same Seed) with independent
	// reissue coins per shard — the dependence structure of a live
	// fan-out client running one hedger per shard. Zero preserves the
	// historical stream derivation exactly.
	PolicySeed uint64
	// ServiceSeed is the same override for the service-time stream:
	// non-zero re-derives it from Seed XOR ServiceSeed. The sharded
	// composition sets it per shard so stochastic sources (DistSource)
	// draw independent service times on every shard — a shard serves
	// its own slice of the data — instead of replaying shard 0's
	// draws; trace-backed sources ignore the stream entirely. Zero
	// preserves the historical derivation exactly.
	ServiceSeed uint64
	// SpeedFactors optionally gives each server a static service-time
	// multiplier (1 = nominal, 2 = half speed), modelling permanently
	// heterogeneous replicas — older hardware, a degraded disk, an
	// overloaded VM neighbour. Length must equal Servers when set.
	SpeedFactors []float64
	// Interference, when non-nil, models transient server slowdowns —
	// the background tasks, CPU shortages, and co-located work the
	// paper's introduction names as drivers of tail latency on real
	// testbeds. Each server independently alternates between normal
	// and slow states; requests that start service while the server
	// is slow take Factor times longer. Hedging pays precisely
	// because the replica serving the reissue is usually not slow at
	// the same moment.
	Interference *Interference
	// CancelOnComplete withdraws a query's outstanding copies as soon
	// as its first response arrives — Dean and Barroso's "tied
	// requests" optimization, an extension beyond the paper (which
	// lets redundant copies run to completion, wasting their service
	// time). Queued copies are dropped; a copy already in service is
	// not preempted. Note that cancelled copies yield no response
	// time, so the optimizer's RX/RY logs shrink accordingly.
	CancelOnComplete bool
	// Faults, when set, arms the chaos mirror: the live fault
	// injector's profile script replayed on virtual time, with an
	// optional per-server circuit breaker re-implementing
	// hedge.Breaker's transitions. See FaultPlan. Requires finite
	// Servers. Nil (the default) is a strict no-op — no chaos branch
	// touches the hot path.
	Faults *FaultPlan
	// FreshPerRun gives every successive Run its own random stream.
	// The default (false) applies common random numbers: every run
	// replays the identical arrival and service-time streams, so two
	// policies are compared on exactly the same sample path. With
	// heavy-tailed service times (the paper's Pareto(1.1) has
	// infinite variance) this variance reduction is what makes
	// policy comparisons and adaptive refinement converge at
	// practical sample sizes; policy coin flips still come from
	// their own stream and vary per policy.
	FreshPerRun bool
}

// Interference parametrizes transient per-server slowdowns: slow
// periods begin at exponential rate Rate per server, last an
// exponentially distributed time with mean MeanDuration, and multiply
// the service times of requests starting during them by Factor.
type Interference struct {
	Rate         float64 // slow-period starts per unit time per server
	MeanDuration float64 // mean slow-period length
	Factor       float64 // service-time multiplier while slow, > 1
}

func (iv Interference) validate() error {
	if iv.Rate <= 0 || iv.MeanDuration <= 0 {
		return fmt.Errorf("cluster: interference rate %v and duration %v must be positive", iv.Rate, iv.MeanDuration)
	}
	if iv.Factor <= 1 {
		return fmt.Errorf("cluster: interference factor %v must exceed 1", iv.Factor)
	}
	return nil
}

// SlowFraction returns the long-run fraction of time a server spends
// slowed: Rate*MeanDuration / (1 + Rate*MeanDuration).
func (iv Interference) SlowFraction() float64 {
	x := iv.Rate * iv.MeanDuration
	return x / (1 + x)
}

func (c Config) validate() error {
	if c.Queries <= 0 {
		return fmt.Errorf("cluster: Queries=%d must be positive", c.Queries)
	}
	if c.Servers < 0 {
		return fmt.Errorf("cluster: Servers=%d must be non-negative", c.Servers)
	}
	if c.Servers > 0 && c.ArrivalTimes == nil && (c.ArrivalRate <= 0 || math.IsNaN(c.ArrivalRate)) {
		return fmt.Errorf("cluster: ArrivalRate=%v must be positive with finite servers", c.ArrivalRate)
	}
	if c.ArrivalTimes != nil {
		if len(c.ArrivalTimes) < c.Queries+c.Warmup {
			return fmt.Errorf("cluster: %d arrival times for %d queries (+%d warmup)",
				len(c.ArrivalTimes), c.Queries, c.Warmup)
		}
		if c.FanOut > 1 {
			return fmt.Errorf("cluster: ArrivalTimes and FanOut=%d cannot be combined", c.FanOut)
		}
		for i := 1; i < c.Queries+c.Warmup; i++ {
			if c.ArrivalTimes[i] < c.ArrivalTimes[i-1] {
				return fmt.Errorf("cluster: ArrivalTimes must be non-decreasing (index %d: %v < %v)",
					i, c.ArrivalTimes[i], c.ArrivalTimes[i-1])
			}
		}
	}
	if c.Discipline == Batch {
		if err := c.Batch.Validate(); err != nil {
			return err
		}
	}
	if c.Source == nil {
		return fmt.Errorf("cluster: Source must be set")
	}
	if ts, ok := c.Source.(*TraceSource); ok && len(ts.Times) == 0 {
		return fmt.Errorf("cluster: TraceSource has no service times; record or generate a workload first")
	}
	if c.Warmup < 0 {
		return fmt.Errorf("cluster: Warmup=%d must be non-negative", c.Warmup)
	}
	if c.Interference != nil {
		if err := c.Interference.validate(); err != nil {
			return err
		}
	}
	if c.FanOut < 0 {
		return fmt.Errorf("cluster: FanOut=%d must be non-negative", c.FanOut)
	}
	if c.FanOut > 1 {
		if c.Queries%c.FanOut != 0 || c.Warmup%c.FanOut != 0 {
			return fmt.Errorf("cluster: Queries=%d and Warmup=%d must be multiples of FanOut=%d",
				c.Queries, c.Warmup, c.FanOut)
		}
	}
	if c.Faults != nil {
		if err := c.Faults.validate(c.Servers); err != nil {
			return err
		}
	}
	if c.SpeedFactors != nil {
		if len(c.SpeedFactors) != c.Servers {
			return fmt.Errorf("cluster: %d speed factors for %d servers", len(c.SpeedFactors), c.Servers)
		}
		for i, f := range c.SpeedFactors {
			if f <= 0 || math.IsNaN(f) {
				return fmt.Errorf("cluster: speed factor %v for server %d must be positive", f, i)
			}
		}
	}
	return nil
}

// Result is the detailed outcome of one simulated run. Its slices are
// freshly allocated per run (pre-sized from Config) and remain valid
// after subsequent runs of the same Cluster.
type Result struct {
	// Log has one record per measured (post-warmup) query.
	Log *trace.Log
	// Outcomes parallel Log for remediation-rate accounting.
	Outcomes []metrics.QueryOutcome
	// Pairs holds (primary, reissue) response-time pairs for measured
	// queries that were reissued.
	Pairs []rangequery.Point
	// ReissueRate counts reissues over measured queries.
	ReissueRate float64
	// Utilization is the measured per-server busy fraction over the
	// simulated duration (NaN for infinite servers).
	Utilization float64
	// Duration is the simulated time span.
	Duration float64
	// FanOutResponses holds, when Config.FanOut > 1, the response
	// time of each fan-out batch: the maximum over its sub-requests'
	// end-to-end responses.
	FanOutResponses []float64
	// FailedQueries counts measured queries that ended with no
	// successful copy; FailureRate is FailedQueries over measured
	// queries. Failed queries contribute no Log record (they have no
	// response) but their dispatched reissues still count toward
	// ReissueRate — the live MeasuredSource counts dispatches the
	// same way. Zero without Config.Faults.
	FailedQueries int
	FailureRate   float64
	// FaultedCopies, StalledCopies, ReroutedCopies, and
	// RejectedCopies mirror the live injector's Snapshot accounting.
	FaultedCopies, StalledCopies, ReroutedCopies, RejectedCopies int
	// BreakerTrips and BreakerOpen are the per-server breaker-mirror
	// outcome: closed->open transition counts and whether each
	// server's breaker ended the run tripped (open or half-open). Nil
	// without a breaker-armed Config.Faults.
	BreakerTrips []int
	BreakerOpen  []bool
	// Batches logs every launched batch in launch order (warmup
	// included), Batch discipline only: the server it ran on and its
	// membership in admission order. The sim-vs-live agreement tests
	// compare it against the live replicas' batch logs.
	Batches []BatchRecord
}

// BatchRecord is one launched batch: where it ran and which request
// copies it served, in admission order.
type BatchRecord struct {
	Server  int
	Members []sched.Member
}

// Cluster is a reusable simulation harness. It implements
// reissue.System: each Run simulates the configured workload under the
// given policy with a fresh RNG stream. Runs reuse the cluster's
// pooled simulation state, so a Cluster must not execute two Runs
// concurrently.
type Cluster struct {
	cfg  Config
	runs uint64
	rs   *runState // pooled simulation state, reused across runs
}

// New validates the configuration and returns a Cluster.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.LB == nil {
		cfg.LB = RandomLB{}
	}
	if cfg.Connections <= 0 {
		cfg.Connections = 20
	}
	return &Cluster{cfg: cfg}, nil
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// AdoptState transfers prev's pooled simulation state — event slab,
// request arena, query records, server pool — into c, so a fresh
// Cluster starts allocation-warm instead of rebuilding its engine on
// the first run. The sweep harness uses it to keep one warm engine
// per worker while points construct their own Cluster values.
//
// Adoption moves the state: prev is left engine-less and lazily
// rebuilds if run again. Results are unaffected either way — every
// run re-derives its RNG streams from the Config seed and fully
// resets the pooled state, so an adopted engine replays the exact
// run a cold one would. Servers are rebuilt only when the adopting
// configuration changes their shape (count or discipline); all other
// pooled buffers carry over regardless of configuration.
func (c *Cluster) AdoptState(prev *Cluster) {
	if prev == nil || prev == c || prev.rs == nil || c.rs != nil {
		return
	}
	rs := prev.rs
	prev.rs = nil
	rs.cfg = &c.cfg
	n := c.cfg.Servers
	if n != len(rs.servers) || (n > 0 && (rs.servers[0].discipline != c.cfg.Discipline || rs.servers[0].bcfg != c.cfg.Batch)) {
		rs.servers = make([]*server, n)
		rs.lengths = make([]int, n)
		for i := range rs.servers {
			rs.servers[i] = newServer(i, c.cfg.Discipline, c.cfg.Batch, rs.sim, rs.onComplete, rs.recordBatch)
		}
	}
	c.rs = rs
}

// Run implements reissue.System.
func (c *Cluster) Run(p reissue.Policy) reissue.RunResult {
	res := c.RunDetailed(p)
	out := reissue.RunResult{
		Primary:     res.Log.PrimaryTimes(),
		Reissue:     res.Log.ReissueTimes(),
		Pairs:       res.Pairs,
		Query:       res.Log.ResponseTimes(),
		ReissueRate: res.ReissueRate,
	}
	return out
}

// query tracks one logical query across its primary and reissue
// copies. Records live in the runState's pooled slice; requests refer
// to them by stable pointer (the slice is sized before any event
// fires and never grows mid-run).
type query struct {
	id       int
	arrival  float64
	measured bool

	// Pre-drawn workload randomness (drawn at schedule time, in query
	// order, exactly as the closure-based controller did).
	sPrim, sReis float64
	conn         int

	done     bool
	response float64

	primaryDone   bool
	primaryResp   float64
	primaryServer int

	reissues     int
	reissueDelay float64
	reissueResp  float64
	reissueDone  bool

	// outstanding tracks dispatched copies for CancelOnComplete.
	outstanding []*request
}

// reqChunkShift sizes the request arena's chunks (512 records). The
// arena hands out stable pointers — chunks are never reallocated,
// only appended — so requests can be referenced across events while
// the backing memory is recycled run over run.
const reqChunkShift = 9

type reqArena struct {
	chunks [][]request
	n      int
}

func (a *reqArena) get() *request {
	ci, off := a.n>>reqChunkShift, a.n&(1<<reqChunkShift-1)
	if ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]request, 1<<reqChunkShift))
	}
	idx := a.n
	a.n++
	r := &a.chunks[ci][off]
	*r = request{idx: int32(idx)}
	return r
}

func (a *reqArena) at(i int) *request {
	return &a.chunks[i>>reqChunkShift][i&(1<<reqChunkShift-1)]
}

func (a *reqArena) reset() { a.n = 0 }

// runState is a Cluster's pooled simulation machinery: the event
// list, query records, request arena, servers, and the shared typed
// event callbacks. One runState is built per Cluster and recycled by
// every run.
type runState struct {
	cfg *Config
	sim *des.Sim

	queries []query
	servers []*server
	lengths []int
	arena   reqArena
	planBuf []float64

	policy    reissue.Policy
	policyRNG *stats.RNG
	lbRNG     *stats.RNG

	// batches is the current run's batch log (Batch discipline only).
	// It starts nil every run and is handed to the Result verbatim, so
	// logs survive later runs without copying.
	batches []BatchRecord

	// chaos is non-nil only while a Faults-configured run is active;
	// chaosPool is its pooled backing store.
	chaos     *chaosState
	chaosPool chaosState

	// Shared ArgEvent func values (one allocation each, at pool
	// construction) — the typed replacements for the per-query,
	// per-reissue, and per-toggle closures of the old controller.
	arriveFn    des.ArgEvent
	reissueFn   des.ArgEvent
	infDoneFn   des.ArgEvent
	slowFn      des.ArgEvent
	chaosDoneFn des.ArgEvent
}

// state returns the cluster's pooled runState, reset for a new run.
func (c *Cluster) state() *runState {
	rs := c.rs
	if rs == nil {
		rs = &runState{cfg: &c.cfg, sim: des.New()}
		rs.arriveFn = rs.arrive
		rs.reissueFn = rs.reissueAt
		rs.infDoneFn = rs.infComplete
		rs.slowFn = rs.setSlow
		rs.chaosDoneFn = rs.chaosComplete
		if n := c.cfg.Servers; n > 0 {
			rs.servers = make([]*server, n)
			rs.lengths = make([]int, n)
			for i := range rs.servers {
				rs.servers[i] = newServer(i, c.cfg.Discipline, c.cfg.Batch, rs.sim, rs.onComplete, rs.recordBatch)
			}
		}
		c.rs = rs
	}
	rs.sim.Reset()
	rs.arena.reset()
	rs.batches = nil
	if c.cfg.Faults != nil {
		rs.chaosPool.reset(c.cfg.Faults, c.cfg.Servers)
		rs.chaos = &rs.chaosPool
	} else {
		rs.chaos = nil
	}
	total := c.cfg.Queries + c.cfg.Warmup
	if cap(rs.queries) < total {
		rs.queries = make([]query, total)
	} else {
		rs.queries = rs.queries[:total]
	}
	for i := range rs.servers {
		s := rs.servers[i]
		s.reset()
		if c.cfg.SpeedFactors != nil {
			s.baseSpeed = c.cfg.SpeedFactors[i]
		}
	}
	return rs
}

// recordBatch logs one launched batch's membership — the simulator's
// half of the batch-agreement evidence. Records are fresh per run
// (rs.batches starts nil) so results stay valid across runs.
func (rs *runState) recordBatch(server int, members []*request) {
	ms := make([]sched.Member, len(members))
	for i, r := range members {
		ms[i] = sched.Member{Query: r.q.id, Reissue: r.reissue}
	}
	rs.batches = append(rs.batches, BatchRecord{Server: server, Members: ms})
}

func (rs *runState) queueLens() []int {
	for i, s := range rs.servers {
		rs.lengths[i] = s.Len()
	}
	return rs.lengths
}

// onComplete handles one finished request copy — it is the single
// completion callback shared by every server and the infinite-server
// path.
func (rs *runState) onComplete(r *request, now float64) {
	q := r.q
	if r.cancelled {
		// In-service when cancelled: finished anyway, but its
		// measurement was already forfeited.
		return
	}
	if rs.chaos != nil {
		if r.slowEdge > 1 && !r.deferred {
			// Slow fault: hold the completed copy for (Factor-1)x its
			// elapsed time before reporting it — the server has
			// already moved on, so capacity is untouched. This is the
			// virtual-time twin of the live injector's post-completion
			// stretch: both make response = Factor x (wait + service).
			r.deferred = true
			rs.sim.AfterArg((r.slowEdge-1)*(now-r.dispatch), rs.chaosDoneFn, int(r.idx), 0)
			return
		}
		// Success reports land at the (possibly stretched) completion
		// instant, mirroring the live injector reporting when the copy
		// returns to the hedger.
		rs.chaos.report(int(r.server), true, now)
	}
	rt := now - r.dispatch
	cfg := rs.cfg
	if cfg.OnRequestComplete != nil {
		cfg.OnRequestComplete(r.reissue, rt, now)
	}
	if r.reissue {
		if !q.reissueDone {
			q.reissueDone = true
			q.reissueResp = rt
		}
	} else {
		q.primaryDone = true
		q.primaryResp = rt
	}
	if !q.done {
		q.done = true
		q.response = now - q.arrival
		if cfg.CancelOnComplete {
			for _, other := range q.outstanding {
				if other != r && !other.inService {
					other.cancelled = true
				}
			}
		}
	}
}

// dispatch sends one request copy to a server (or to the no-queueing
// infinite-server pool), returning the chosen server index. Callers
// populate the request, including r.dispatch, before handing it over.
func (rs *runState) dispatch(r *request, now float64, exclude int) int {
	r.q.outstanding = append(r.q.outstanding, r)
	if rs.cfg.Servers == 0 {
		// Infinite servers: no queueing, response = service; the
		// copy starts immediately, so it is never cancellable.
		r.inService = true
		rs.sim.AfterArg(r.service, rs.infDoneFn, int(r.idx), 0)
		return -1
	}
	var idx int
	if qp, ok := rs.cfg.LB.(queryPlacer); ok {
		// Query-aware deterministic placement (HashedLB): the
		// capability interface is satisfied by value and pointer
		// forms alike, so no concrete-type special case here.
		reissues := 0
		if r.reissue {
			reissues = r.q.reissues
		}
		idx = qp.placeQuery(r.q.id, reissues, rs.cfg.Servers)
	} else {
		idx = rs.cfg.LB.Pick(rs.lbRNG, rs.queueLens(), exclude)
	}
	if rs.chaos != nil {
		routed, ok := rs.chaos.route(idx, now)
		if !ok {
			// Every server's breaker is open: the copy fails fast,
			// exactly like the live injector returning ErrBreakerOpen.
			rs.chaos.rejected++
			return idx
		}
		if routed != idx {
			rs.chaos.rerouted++
			idx = routed
		}
		out := fault.Decide(rs.chaos.plan.Profiles, idx, r.q.id, copyOrdinal(r))
		switch {
		case out.Fail:
			// Crash / flap / error-rate: the copy fails at dispatch and
			// never occupies the server; failures report immediately,
			// in deterministic event order.
			rs.chaos.failed++
			rs.chaos.report(idx, false, now)
			return idx
		case out.Stall:
			// The copy hangs forever: never enqueued, never completes.
			// Only its query's other copies can still answer.
			rs.chaos.stalled++
			return idx
		case out.Slow > 1:
			r.slowEdge = out.Slow
		}
		r.server = int32(idx)
	}
	rs.servers[idx].Enqueue(r, now)
	return idx
}

// chaosComplete fires at a slow-faulted copy's stretched completion
// instant and re-enters the ordinary completion path.
func (rs *runState) chaosComplete(now float64, reqIdx int, _ float64) {
	rs.onComplete(rs.arena.at(reqIdx), now)
}

// infComplete fires when an infinite-server copy finishes service.
func (rs *runState) infComplete(now float64, reqIdx int, _ float64) {
	rs.onComplete(rs.arena.at(reqIdx), now)
}

// arrive fires when query qi's primary is dispatched. The reissue
// plan is sampled here (not at schedule time) so that policies whose
// parameters evolve during the run — the online adapter — see their
// current state; arrival events fire in query order, so the policy
// RNG stream is unaffected for static policies.
func (rs *runState) arrive(now float64, qi int, _ float64) {
	q := &rs.queries[qi]
	prim := rs.arena.get()
	prim.q = q
	prim.service = q.sPrim
	prim.dispatch = now
	prim.conn = q.conn
	q.primaryServer = rs.dispatch(prim, now, -1)
	for _, d := range rs.plan() {
		rs.sim.AfterArg(d, rs.reissueFn, qi, d)
	}
}

// plan samples the policy's reissue schedule, allocation-free when
// the policy implements the PlanAppender fast path (all the
// repository's families do); foreign policies fall back to Plan.
func (rs *runState) plan() []float64 {
	if pa, ok := rs.policy.(reissue.PlanAppender); ok {
		rs.planBuf = pa.AppendPlan(rs.policyRNG, rs.planBuf[:0])
		return rs.planBuf
	}
	return rs.policy.Plan(rs.policyRNG)
}

// reissueAt fires at one of query qi's planned reissue delays.
func (rs *runState) reissueAt(now float64, qi int, delay float64) {
	q := &rs.queries[qi]
	// The paper's client checks a completion flag before sending the
	// reissue.
	if q.done {
		return
	}
	q.reissues++
	if q.reissues == 1 {
		q.reissueDelay = delay
	}
	re := rs.arena.get()
	re.q = q
	re.service = q.sReis
	re.dispatch = now
	re.conn = q.conn
	re.reissue = true
	rs.dispatch(re, now, q.primaryServer)
}

// setSlow toggles a server's interference slowdown factor.
func (rs *runState) setSlow(_ float64, si int, factor float64) {
	rs.servers[si].slowFactor = factor
}

// scheduleInterference precomputes each server's slow-period toggle
// chain up to a horizon past the last arrival so the event list
// drains.
func (rs *runState) scheduleInterference(horizon float64, root *stats.RNG) {
	iv := rs.cfg.Interference
	if iv == nil || rs.cfg.Servers == 0 {
		return
	}
	ivRNG := root.Split(6)
	for si := range rs.servers {
		t := ivRNG.ExpFloat64() / iv.Rate
		for t < horizon {
			start, dur := t, ivRNG.ExpFloat64()*iv.MeanDuration
			rs.sim.AtArg(start, rs.slowFn, si, iv.Factor)
			rs.sim.AtArg(start+dur, rs.slowFn, si, 1)
			t = start + dur + ivRNG.ExpFloat64()/iv.Rate
		}
	}
}

// RunDetailed simulates one run under policy p and returns the full
// measurement set.
func (c *Cluster) RunDetailed(p reissue.Policy) *Result {
	c.runs++
	cfg := c.cfg
	cfg.Source.Reset()
	seed := cfg.Seed
	if cfg.FreshPerRun {
		//lint:allow saltdiscipline pre-Mix64 reseed sequence pinned by the figure goldens and sim-live agreement tests
		seed += c.runs * 0x9e3779b9
	}
	root := stats.NewRNG(seed)
	arrivalRNG := root.Split(1)
	serviceRNG := root.Split(2)
	if cfg.ServiceSeed != 0 {
		serviceRNG = stats.NewRNG(seed ^ cfg.ServiceSeed).Split(2)
	}
	policyRNG := root.Split(3)
	if cfg.PolicySeed != 0 {
		// XOR keeps FreshPerRun's per-run seed evolution (and common
		// random numbers without it) while decoupling the overridden
		// stream from the shared arrival seed.
		policyRNG = stats.NewRNG(seed ^ cfg.PolicySeed).Split(3)
	}
	lbRNG := root.Split(4)
	connRNG := root.Split(5)

	rs := c.state()
	rs.policy = p
	rs.policyRNG = policyRNG
	rs.lbRNG = lbRNG
	total := cfg.Queries + cfg.Warmup

	// Schedule the open-loop arrival process. All workload randomness
	// (arrival gaps, service times, connections) is drawn here in
	// query order — the same stream order as the closure-based
	// controller — and parked in the pooled query records.
	at := 0.0
	fan := cfg.FanOut
	if fan < 1 {
		fan = 1
	}
	for i := 0; i < total; i++ {
		if cfg.ArrivalTimes != nil {
			// Explicit schedule: replay the caller's instants verbatim
			// (the live-agreement tests' shared trace).
			at = cfg.ArrivalTimes[i]
		} else if cfg.Servers > 0 && i > 0 && i%fan == 0 {
			// Sub-requests within a fan-out batch share one arrival time.
			rate := cfg.ArrivalRate
			if cfg.RateMultiplier != nil {
				m := cfg.RateMultiplier(at)
				if m <= 0 || math.IsNaN(m) {
					panic(fmt.Sprintf("cluster: RateMultiplier(%v) = %v must be positive", at, m))
				}
				rate *= m
			}
			at += arrivalRNG.ExpFloat64() / rate * float64(fan)
		}
		q := &rs.queries[i]
		out := q.outstanding[:0]
		*q = query{id: i, arrival: at, measured: i >= cfg.Warmup, outstanding: out}
		q.sPrim, q.sReis = cfg.Source.Sample(serviceRNG)
		q.conn = connRNG.Intn(cfg.Connections)
		// Arrival times are non-decreasing, so the whole arrival
		// process rides the event list's O(1) monotone lane and stays
		// out of the heap.
		rs.sim.AtMonotone(at, rs.arriveFn, i, 0)
	}

	rs.scheduleInterference(at*1.25, root)
	rs.sim.Run()

	// Collect measurements over post-warmup queries into freshly
	// allocated, exactly-sized result slices (the pooled state stays
	// private; results must survive later runs).
	res := &Result{Log: &trace.Log{Records: make([]trace.Record, 0, cfg.Queries)}}
	res.Outcomes = make([]metrics.QueryOutcome, 0, cfg.Queries)
	npairs := 0
	for i := cfg.Warmup; i < total; i++ {
		q := &rs.queries[i]
		if q.reissues > 0 && q.primaryDone && q.reissueDone {
			npairs++
		}
	}
	if npairs > 0 {
		res.Pairs = make([]rangequery.Point, 0, npairs)
	}
	reissued := 0
	for i := 0; i < total; i++ {
		q := &rs.queries[i]
		if !q.measured {
			continue
		}
		if rs.chaos != nil && !q.done {
			// No copy of this query ever answered — a chaos failure.
			// It has no response to log, but its dispatched reissues
			// still count (the live MeasuredSource counts dispatches
			// whether or not the copy later succeeds).
			res.FailedQueries++
			reissued += q.reissues
			continue
		}
		rec := trace.Record{
			ID:          int64(q.id),
			Arrival:     q.arrival,
			Primary:     q.primaryResp,
			PrimaryDone: q.primaryDone,
			Response:    q.response,
		}
		outcome := metrics.QueryOutcome{Primary: q.primaryResp}
		if q.reissues > 0 {
			reissued += q.reissues
			rec.Reissued = true
			rec.Reissues = q.reissues
			rec.ReissueDelay = q.reissueDelay
			rec.Reissue = q.reissueResp
			rec.ReissueDone = q.reissueDone
			outcome.Reissued = true
			outcome.ReissueDelay = q.reissueDelay
			outcome.Reissue = q.reissueResp
			outcome.ReissueCompleted = q.reissueDone
			if q.primaryDone && q.reissueDone {
				res.Pairs = append(res.Pairs, rangequery.Point{X: q.primaryResp, Y: q.reissueResp})
			}
		}
		res.Log.Add(rec)
		res.Outcomes = append(res.Outcomes, outcome)
	}
	res.ReissueRate = float64(reissued) / float64(cfg.Queries)
	if rs.chaos != nil {
		res.FailureRate = float64(res.FailedQueries) / float64(cfg.Queries)
		res.FaultedCopies = rs.chaos.failed
		res.StalledCopies = rs.chaos.stalled
		res.ReroutedCopies = rs.chaos.rerouted
		res.RejectedCopies = rs.chaos.rejected
		if rs.chaos.plan.BreakerThreshold > 0 {
			res.BreakerTrips = make([]int, len(rs.chaos.servers))
			res.BreakerOpen = make([]bool, len(rs.chaos.servers))
			for i := range rs.chaos.servers {
				res.BreakerTrips[i] = rs.chaos.servers[i].trips
				res.BreakerOpen[i] = rs.chaos.servers[i].open
			}
		}
	}
	if fan > 1 {
		res.FanOutResponses = make([]float64, 0, cfg.Queries/fan)
		for i := cfg.Warmup; i < total; i += fan {
			max := 0.0
			for j := i; j < i+fan; j++ {
				if rs.queries[j].response > max {
					max = rs.queries[j].response
				}
			}
			res.FanOutResponses = append(res.FanOutResponses, max)
		}
	}
	res.Batches = rs.batches
	res.Duration = rs.sim.Now()
	if cfg.Servers > 0 && res.Duration > 0 {
		var busy float64
		for _, s := range rs.servers {
			busy += s.busyTime
		}
		res.Utilization = busy / (res.Duration * float64(cfg.Servers))
	} else {
		res.Utilization = math.NaN()
	}
	return res
}

// ArrivalRateForUtilization returns the Poisson arrival rate that
// loads n servers to the target utilization rho given the mean
// service time: lambda = rho * n / E[S].
func ArrivalRateForUtilization(rho float64, servers int, meanService float64) float64 {
	if rho <= 0 || rho >= 1 {
		panic(fmt.Sprintf("cluster: utilization %v outside (0, 1)", rho))
	}
	if servers <= 0 || meanService <= 0 {
		panic("cluster: servers and mean service time must be positive")
	}
	return rho * float64(servers) / meanService
}
