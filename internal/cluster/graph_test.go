package cluster

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/reissue"
)

// graphTrace builds a deterministic heavy-tailed service trace.
func graphTrace(n int, seed uint64) []float64 {
	rng := stats.NewRNG(seed)
	exp := stats.NewExponential(0.25)
	times := make([]float64, n)
	for i := range times {
		times[i] = 1 + exp.Sample(rng)
	}
	return times
}

func graphBase(n, warmup int, times []float64) Config {
	return Config{
		Servers:     3,
		ArrivalRate: 0.4,
		Queries:     n + warmup,
		Warmup:      0,
		Source:      &TraceSource{Times: times},
		LB:          HashedLB{},
		Seed:        9,
	}
}

func polConst(p reissue.Policy) func(string) reissue.Policy {
	return func(string) reissue.Policy { return p }
}

// plainRun runs an uncomposed Cluster over the same trace, load, and
// seeds, measuring the same post-warmup window, and returns the
// per-query responses plus the reissue rate over measured queries.
func plainRun(t *testing.T, cfg Config, warmup int, pol reissue.Policy) ([]float64, float64) {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := c.RunDetailed(pol)
	rts := res.Log.ResponseTimes()
	copies := 0
	for i := warmup; i < len(rts); i++ {
		copies += res.Log.Records[i].Reissues
	}
	return rts[warmup:], float64(copies) / float64(len(rts)-warmup)
}

// TestGraphLeafIdentity: a single-leaf graph is the uncomposed
// cluster, byte for byte — responses and reissue rate.
func TestGraphLeafIdentity(t *testing.T) {
	const n, warmup = 400, 50
	times := graphTrace(n+warmup, 3)
	pol := reissue.SingleR{D: 2, Q: 0.3}

	leaf, err := NewGraphLeaf("root", graphBase(n, warmup, times))
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGraph(leaf, n, warmup)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Run(polConst(pol))

	want, wantRate := plainRun(t, graphBase(n, warmup, times), warmup, pol)
	if len(got.Query) != len(want) {
		t.Fatalf("graph measured %d queries, cluster %d", len(got.Query), len(want))
	}
	for i := range want {
		if got.Query[i] != want[i] {
			t.Fatalf("query %d: graph %v != cluster %v", i, got.Query[i], want[i])
		}
	}
	if got.LeafRates["root"] != wantRate {
		t.Errorf("leaf rate %v != cluster rate %v", got.LeafRates["root"], wantRate)
	}
}

// TestGraphShardDegenerateIdentity: a 1-shard fan-out adds no salt
// and no merge, so it is byte-identical to the uncomposed cluster.
func TestGraphShardDegenerateIdentity(t *testing.T) {
	const n, warmup = 400, 50
	times := graphTrace(n+warmup, 4)
	pol := reissue.SingleR{D: 2, Q: 0.3}

	leaf, err := NewGraphLeaf("shard0", graphBase(n, warmup, times))
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewGraphShard("", n+warmup, leaf)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGraph(sh, n, warmup)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Run(polConst(pol))

	want, wantRate := plainRun(t, graphBase(n, warmup, times), warmup, pol)
	for i := range want {
		if got.Query[i] != want[i] {
			t.Fatalf("query %d: 1-shard graph %v != cluster %v", i, got.Query[i], want[i])
		}
	}
	if got.LeafRates["shard0"] != wantRate {
		t.Errorf("1-shard leaf rate %v != cluster rate %v", got.LeafRates["shard0"], wantRate)
	}
}

// TestGraphTierDegenerateIdentity: an Inf-delay, hit-rate-1 tier
// shields every query, so the composition is byte-identical to the
// uncomposed cache cluster and the store sees zero dispatches.
func TestGraphTierDegenerateIdentity(t *testing.T) {
	const n, warmup = 400, 50
	total := n + warmup
	cacheTimes := graphTrace(total, 5)
	storeTimes := graphTrace(total, 6)
	pol := reissue.SingleR{D: 2, Q: 0.3}
	hits := make([]bool, total)
	for i := range hits {
		hits[i] = true
	}

	cache, err := NewGraphLeaf("cache", graphBase(n, warmup, cacheTimes))
	if err != nil {
		t.Fatal(err)
	}
	storeCfg := graphBase(n, warmup, storeTimes)
	storeCfg.PolicySeed = tierSalt()
	store, err := NewGraphLeaf("store", storeCfg)
	if err != nil {
		t.Fatal(err)
	}
	tier, err := NewGraphTier("", cache, store, hits, math.Inf(1), total)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGraph(tier, n, warmup)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Run(polConst(pol))

	want, wantRate := plainRun(t, graphBase(n, warmup, cacheTimes), warmup, pol)
	for i := range want {
		if got.Query[i] != want[i] {
			t.Fatalf("query %d: degenerate tier %v != cache cluster %v", i, got.Query[i], want[i])
		}
	}
	if got.LeafRates["cache"] != wantRate {
		t.Errorf("cache leaf rate %v != cluster rate %v", got.LeafRates["cache"], wantRate)
	}
	if got.TierRates[""] != 0 {
		t.Errorf("hit-rate-1/Inf-delay tier dispatched to the store: TierRate=%v", got.TierRates[""])
	}
	if got.LeafRates["store"] != 0 {
		t.Errorf("fully shielded store leaf reports rate %v", got.LeafRates["store"])
	}
}

// TestGraphMatchesSharded: a shard node over leaf fleets, salted the
// way the builder salts them, replays NewSharded byte for byte — the
// composed twin IS the existing pairing at depth 1.
func TestGraphMatchesSharded(t *testing.T) {
	const n, warmup, S = 400, 50, 3
	total := n + warmup
	pol := reissue.SingleR{D: 2, Q: 0.3}

	children := make([]GraphNode, S)
	traces := make([][]float64, S)
	for s := 0; s < S; s++ {
		traces[s] = graphTrace(total, uint64(10+s))
		cfg := graphBase(n, warmup, traces[s])
		if s > 0 {
			cfg.PolicySeed = shardSalt(s)
			cfg.ServiceSeed = shardSalt(s)
		}
		leaf, err := NewGraphLeaf("", cfg)
		if err != nil {
			t.Fatal(err)
		}
		children[s] = leaf
	}
	sh, err := NewGraphShard("", total, children...)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGraph(sh, n, warmup)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Run(polConst(pol))

	sources := make([]ServiceSource, S)
	for s := range traces {
		sources[s] = &TraceSource{Times: traces[s]}
	}
	base := graphBase(n, warmup, nil)
	base.Source = nil
	base.Queries = n
	base.Warmup = warmup
	sharded, err := NewSharded(ShardedConfig{Base: base, Sources: sources})
	if err != nil {
		t.Fatal(err)
	}
	want := sharded.Run(pol)
	if len(got.Query) != len(want.Query) {
		t.Fatalf("graph measured %d queries, sharded %d", len(got.Query), len(want.Query))
	}
	for i := range want.Query {
		if got.Query[i] != want.Query[i] {
			t.Fatalf("query %d: graph %v != sharded %v", i, got.Query[i], want.Query[i])
		}
	}
}

// TestGraphMatchesTiered: a tier node over leaf fleets replays
// NewTiered byte for byte, rates included.
func TestGraphMatchesTiered(t *testing.T) {
	const n, warmup = 400, 50
	const delay = 3.0
	total := n + warmup
	cacheTimes := graphTrace(total, 20)
	storeTimes := graphTrace(total, 21)
	hits := make([]bool, total)
	hrng := stats.NewRNG(33)
	for i := range hits {
		hits[i] = hrng.Float64() < 0.7
	}
	cachePol := reissue.SingleR{D: 2, Q: 0.3}
	storePol := reissue.SingleR{D: 4, Q: 0.2}

	cache, err := NewGraphLeaf("cache", graphBase(n, warmup, cacheTimes))
	if err != nil {
		t.Fatal(err)
	}
	storeCfg := graphBase(n, warmup, storeTimes)
	storeCfg.PolicySeed = tierSalt()
	store, err := NewGraphLeaf("store", storeCfg)
	if err != nil {
		t.Fatal(err)
	}
	tier, err := NewGraphTier("", cache, store, hits, delay, total)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGraph(tier, n, warmup)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Run(func(path string) reissue.Policy {
		if path == "store" {
			return storePol
		}
		return cachePol
	})

	base := graphBase(n, warmup, nil)
	base.Source = nil
	base.Queries = n
	base.Warmup = warmup
	tiered, err := NewTiered(TieredConfig{
		Base:      base,
		Cache:     TierConfig{Servers: 3, Source: &TraceSource{Times: cacheTimes}},
		Store:     TierConfig{Servers: 3, Source: &TraceSource{Times: storeTimes}},
		Hits:      hits,
		TierDelay: delay,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := tiered.Run(cachePol, storePol)
	for i := range want.Query {
		if got.Query[i] != want.Query[i] {
			t.Fatalf("query %d: graph %v != tiered %v", i, got.Query[i], want.Query[i])
		}
	}
	if got.TierRates[""] != want.TierRate {
		t.Errorf("tier rate %v != tiered %v", got.TierRates[""], want.TierRate)
	}
	if got.LeafRates["cache"] != want.CacheRate {
		t.Errorf("cache rate %v != tiered %v", got.LeafRates["cache"], want.CacheRate)
	}
	if got.LeafRates["store"] != want.StoreRate {
		t.Errorf("store rate %v != tiered %v", got.LeafRates["store"], want.StoreRate)
	}
}

// TestGraphDepth2Composes: a cache tier over a sharded store — the
// depth-2 graph the live combinators wire — runs, masks consistently,
// and reports every edge's statistics.
func TestGraphDepth2Composes(t *testing.T) {
	const n, warmup, S = 300, 40, 2
	const delay = 3.0
	total := n + warmup
	hits := make([]bool, total)
	hrng := stats.NewRNG(44)
	for i := range hits {
		hits[i] = hrng.Float64() < 0.6
	}

	cache, err := NewGraphLeaf("cache", graphBase(n, warmup, graphTrace(total, 30)))
	if err != nil {
		t.Fatal(err)
	}
	children := make([]GraphNode, S)
	for s := 0; s < S; s++ {
		cfg := graphBase(n, warmup, graphTrace(total, uint64(40+s)))
		cfg.PolicySeed = tierSalt()
		cfg.ServiceSeed = 0
		if s > 0 {
			cfg.PolicySeed ^= shardSalt(s)
			cfg.ServiceSeed = shardSalt(s)
		}
		leaf, err := NewGraphLeaf("store/shard"+string(rune('0'+s)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		children[s] = leaf
	}
	storeNode, err := NewGraphShard("store", total, children...)
	if err != nil {
		t.Fatal(err)
	}
	tier, err := NewGraphTier("", cache, storeNode, hits, delay, total)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGraph(tier, n, warmup)
	if err != nil {
		t.Fatal(err)
	}
	res := g.Run(polConst(reissue.SingleR{D: 2, Q: 0.25}))

	if len(res.Query) != n {
		t.Fatalf("measured %d queries, want %d", len(res.Query), n)
	}
	for i, rt := range res.Query {
		if rt <= 0 || math.IsNaN(rt) {
			t.Fatalf("query %d response %v", i, rt)
		}
	}
	tr := res.TierRates[""]
	if tr <= 0 || tr >= 1 {
		t.Errorf("depth-2 tier rate %v outside (0,1)", tr)
	}
	for _, path := range []string{"cache", "store/shard0", "store/shard1"} {
		if _, ok := res.LeafRates[path]; !ok {
			t.Errorf("missing leaf rate for %q", path)
		}
	}
	// The store shards serve only dispatched (non-shielded) queries;
	// their rates must still be well-formed.
	for path, rate := range res.LeafRates {
		if rate < 0 || math.IsNaN(rate) {
			t.Errorf("leaf %q rate %v", path, rate)
		}
	}
}
