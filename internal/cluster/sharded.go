package cluster

import (
	"fmt"

	"repro/internal/stats"
	"repro/reissue"
)

// ShardedConfig describes a partitioned fleet: S shards, each a
// replicated cluster serving its own slice of the workload (its own
// service-time trace), all fed by one open-loop arrival process. A
// query fans out to every shard at its arrival instant, is hedged
// per shard, and completes when the slowest shard answers — the
// canonical production topology of "The Tail at Scale", and the live
// topology reissue/hedge/shard executes on wall clock.
type ShardedConfig struct {
	// Base is the per-shard cluster template — Servers, ArrivalRate,
	// Queries, Warmup, Seed, SpeedFactors, LB, Discipline — shared by
	// every shard. Base.Source is ignored (Sources supplies it) and
	// Base.FanOut must be unset: the sharded composition IS the
	// fan-out.
	Base Config
	// Sources carries one service-time source per shard, typically a
	// TraceSource over that shard's calibrated sub-query times.
	// Stochastic sources (DistSource) also compose: each shard draws
	// from an independent service stream (ServiceSeed is salted per
	// shard), modelling S fleets serving disjoint data.
	Sources []ServiceSource
}

// Sharded simulates a partitioned fleet as one per-shard Cluster per
// shard. Because a sub-query never leaves its shard, the shards are
// independent given the arrival process, so per-shard simulation
// composes exactly: every shard replays the identical Poisson arrival
// instants (same Seed — the live router fans each query out at one
// instant), while the per-shard reissue coins come from independent
// streams (PolicySeed), matching a live fleet running one hedging
// client per shard. Like Cluster, a Sharded must not execute two
// Runs concurrently.
type Sharded struct {
	shards []*Cluster
}

// shardSalt derives shard s's stream-decorrelation salt —
// non-zero so the Config seed overrides always take effect for
// s > 0. The live router (reissue/hedge/shard) salts its per-shard
// coin seeds through the same stats.Mix64NonZero; the correspondence
// is structural (independent per-shard streams over a shared base),
// not a bit-identical coin sequence.
func shardSalt(s int) uint64 {
	return stats.Mix64NonZero(uint64(s) + 1)
}

// NewSharded validates the configuration and builds the per-shard
// clusters. Shard 0 keeps the template's coin stream untouched, so a
// one-shard Sharded is byte-identical to the plain Cluster it wraps.
func NewSharded(cfg ShardedConfig) (*Sharded, error) {
	if len(cfg.Sources) == 0 {
		return nil, fmt.Errorf("cluster: NewSharded needs at least one shard source")
	}
	if cfg.Base.FanOut > 1 {
		return nil, fmt.Errorf("cluster: ShardedConfig.Base.FanOut=%d must be unset — the sharded composition is the fan-out", cfg.Base.FanOut)
	}
	sh := &Sharded{shards: make([]*Cluster, len(cfg.Sources))}
	for s, src := range cfg.Sources {
		c := cfg.Base
		c.Source = src
		if s > 0 {
			// Coins AND service draws are per shard: a shard serves
			// its own data, so a stochastic source must not replay
			// shard 0's service times (trace sources ignore the
			// stream). Arrivals stay shared through the common Seed.
			c.PolicySeed = cfg.Base.PolicySeed ^ shardSalt(s)
			c.ServiceSeed = cfg.Base.ServiceSeed ^ shardSalt(s)
		}
		cl, err := New(c)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		sh.shards[s] = cl
	}
	return sh, nil
}

// NumShards returns the number of shards.
func (sh *Sharded) NumShards() int { return len(sh.shards) }

// Shard returns shard s's underlying cluster.
func (sh *Sharded) Shard(s int) *Cluster { return sh.shards[s] }

// ShardedResult is the outcome of one sharded run.
type ShardedResult struct {
	// PerShard holds each shard's full single-shard measurement set.
	PerShard []*Result
	// Query holds, per measured query, the end-to-end response time:
	// the maximum over the shards' sub-query responses — the query
	// completes when its slowest shard answers.
	Query []float64
	// ShardRates[s] is shard s's reissue rate (reissued sub-queries
	// over measured queries); MeanRate is their mean, the per-shard
	// budget-comparable statistic.
	ShardRates []float64
	MeanRate   float64
}

// TailLatency returns the k-th quantile of the end-to-end
// (max-over-shards) response times, k in (0, 1), using the same
// nearest-rank formula as the single-shard RunResult.
func (r *ShardedResult) TailLatency(k float64) float64 {
	return reissue.RunResult{Query: r.Query}.TailLatency(k)
}

// Run simulates one sharded run under policy p: every shard replays
// the same arrivals with its own trace and coin stream, and the
// merged result carries the max-over-shards response per query.
func (sh *Sharded) Run(p reissue.Policy) *ShardedResult {
	out := &ShardedResult{
		PerShard:   make([]*Result, len(sh.shards)),
		ShardRates: make([]float64, len(sh.shards)),
	}
	for s, cl := range sh.shards {
		res := cl.RunDetailed(p)
		out.PerShard[s] = res
		out.ShardRates[s] = res.ReissueRate
		out.MeanRate += res.ReissueRate / float64(len(sh.shards))
		rts := res.Log.ResponseTimes()
		if s == 0 {
			out.Query = append([]float64(nil), rts...)
			continue
		}
		if len(rts) != len(out.Query) {
			panic(fmt.Sprintf("cluster: shard %d measured %d queries, shard 0 measured %d", s, len(rts), len(out.Query)))
		}
		for i, rt := range rts {
			if rt > out.Query[i] {
				out.Query[i] = rt
			}
		}
	}
	return out
}
