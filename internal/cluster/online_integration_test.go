package cluster

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/reissue"
)

// TestOnlineAdapterInVaryingLoadCluster wires a reissue.OnlineAdapter
// into a simulated cluster whose arrival rate steps up mid-run — the
// Section 4.4 "varying load" scenario. The adapter observes request
// completions live (OnRequestComplete), re-tunes its SingleR
// parameters every window, and must end up with a meaningfully
// different policy than it started with while keeping its reissue
// spend near the budget.
func TestOnlineAdapterInVaryingLoadCluster(t *testing.T) {
	// LogNormal(1,1) service times: heavy enough that hedging pays at
	// the P99 (the paper's Figure 6, top row).
	dist := stats.NewLogNormal(1, 1)
	const servers = 10
	baseRate := ArrivalRateForUtilization(0.25, servers, dist.Mean())

	adapter, err := reissue.NewOnlineAdapter(reissue.OnlineConfig{
		K: 0.99, B: 0.10, Lambda: 0.5, Window: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}

	var stepTime float64 = math.Inf(1)
	cfg := Config{
		Servers:     servers,
		ArrivalRate: baseRate,
		Queries:     30000,
		Warmup:      2000,
		Source:      DistSource{Dist: dist},
		Seed:        41,
		// Load doubles (25% -> 50% util) halfway through the run.
		RateMultiplier: func(tm float64) float64 {
			if tm > stepTime {
				return 2.0
			}
			return 1.0
		},
		OnRequestComplete: func(reissue bool, rt, now float64) {
			if reissue {
				adapter.ObserveReissue(rt)
			} else {
				adapter.ObservePrimary(rt)
			}
		},
	}
	// Locate the step at roughly half the expected run duration.
	stepTime = float64(cfg.Queries) / 2 / baseRate

	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := c.RunDetailed(adapter)

	if adapter.Epochs() < 5 {
		t.Fatalf("only %d adaptation epochs ran", adapter.Epochs())
	}
	final := adapter.Policy()
	if err := final.Validate(); err != nil {
		t.Fatal(err)
	}
	if final.D <= 0 {
		t.Fatalf("adapter never moved its delay: %v", final)
	}
	// Reissue spend stays near the budget across the whole run even
	// though the distribution shifted under it.
	if math.Abs(res.ReissueRate-0.10) > 0.05 {
		t.Fatalf("measured reissue rate %v, budget 0.10", res.ReissueRate)
	}

	// The adapter must beat both the no-reissue baseline and its own
	// frozen starting policy (immediate reissue at the budget) on the
	// same varying-load sample path.
	baseCfg := cfg
	baseCfg.OnRequestComplete = nil
	bc, err := New(baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	baseRes := bc.RunDetailed(reissue.None{})
	seedRes := bc.RunDetailed(reissue.SingleR{D: 0, Q: 0.10})
	p99Base := metrics.TailLatency(baseRes.Log.ResponseTimes(), 99)
	p99Seed := metrics.TailLatency(seedRes.Log.ResponseTimes(), 99)
	p99Online := metrics.TailLatency(res.Log.ResponseTimes(), 99)
	if p99Online >= p99Base {
		t.Fatalf("online adapter P99 %v not below baseline %v", p99Online, p99Base)
	}
	if p99Online >= p99Seed {
		t.Fatalf("online adapter P99 %v not below frozen seed policy %v", p99Online, p99Seed)
	}
}

func TestRateMultiplierShapesArrivals(t *testing.T) {
	dist := stats.Deterministic{Value: 1}
	mk := func(mult func(float64) float64) *Result {
		c, err := New(Config{
			Servers:        1,
			ArrivalRate:    0.1,
			Queries:        4000,
			Source:         DistSource{Dist: dist},
			Seed:           43,
			RateMultiplier: mult,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c.RunDetailed(reissue.None{})
	}
	constant := mk(nil)
	doubled := mk(func(float64) float64 { return 2 })
	// Doubling the rate halves the span of the arrival process.
	if doubled.Duration > constant.Duration*0.7 {
		t.Fatalf("doubled-rate run spans %v vs constant %v",
			doubled.Duration, constant.Duration)
	}
}

func TestRateMultiplierInvalidPanics(t *testing.T) {
	c, err := New(Config{
		Servers:        1,
		ArrivalRate:    1,
		Queries:        10,
		Source:         DistSource{Dist: stats.Deterministic{Value: 1}},
		Seed:           1,
		RateMultiplier: func(float64) float64 { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate multiplier did not panic")
		}
	}()
	c.RunDetailed(reissue.None{})
}
