package cluster

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/reissue"
)

// tieredFixture builds a two-tier config over synthetic traces: a
// uniform fast cache trace and a slower store trace, with a Bernoulli
// hit stream at the given rate.
func tieredFixture(t *testing.T, n, warmup int, hitRate, tierDelay float64) TieredConfig {
	t.Helper()
	total := n + warmup
	cacheTimes := make([]float64, total)
	storeTimes := make([]float64, total)
	rng := stats.NewRNG(42)
	for i := range cacheTimes {
		cacheTimes[i] = 1.0
		storeTimes[i] = 2.0 + 4.0*rng.Float64()
	}
	hits := make([]bool, total)
	hitRNG := stats.NewRNG(9)
	for i := range hits {
		hits[i] = hitRNG.Bool(hitRate)
	}
	return TieredConfig{
		Base: Config{
			ArrivalRate: 0.8,
			Queries:     n,
			Warmup:      warmup,
			LB:          HashedLB{},
			Seed:        5,
		},
		Cache:     TierConfig{Servers: 3, Source: &TraceSource{Times: cacheTimes}},
		Store:     TierConfig{Servers: 3, Source: &TraceSource{Times: storeTimes}},
		Hits:      hits,
		TierDelay: tierDelay,
	}
}

func TestNewTieredValidation(t *testing.T) {
	base := tieredFixture(t, 200, 50, 0.5, 2)
	for name, mutate := range map[string]func(*TieredConfig){
		"fanout":        func(c *TieredConfig) { c.Base.FanOut = 2 },
		"short hits":    func(c *TieredConfig) { c.Hits = c.Hits[:10] },
		"neg delay":     func(c *TieredConfig) { c.TierDelay = -1 },
		"nan delay":     func(c *TieredConfig) { c.TierDelay = math.NaN() },
		"nil cache src": func(c *TieredConfig) { c.Cache.Source = nil },
		"nil store src": func(c *TieredConfig) { c.Store.Source = nil },
		"zero servers":  func(c *TieredConfig) { c.Store.Servers = 0 },
		"empty store":   func(c *TieredConfig) { c.Store.Source = &TraceSource{} },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := NewTiered(cfg); err == nil {
			t.Errorf("NewTiered accepted %s", name)
		}
	}
}

// TestTieredFallThroughOnly checks the pure fall-through regime
// (TierDelay = Inf): every hit is shielded (completes at its cache
// response, occupies no store capacity), every miss falls through,
// and the tier rate is exactly the measured miss rate.
func TestTieredFallThroughOnly(t *testing.T) {
	cfg := tieredFixture(t, 400, 100, 0.6, math.Inf(1))
	tv, err := NewTiered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := tv.Run(reissue.None{}, reissue.None{})
	if math.Abs(res.TierRate-(1-res.HitRate)) > 1e-12 {
		t.Errorf("TierRate %.4f != miss rate %.4f with an infinite tier delay", res.TierRate, 1-res.HitRate)
	}
	if len(res.StoreResp) != int(res.TierRate*float64(len(res.Query))+0.5) {
		t.Errorf("%d store responses for tier rate %.4f over %d queries", len(res.StoreResp), res.TierRate, len(res.Query))
	}
	si := 0
	for i, resp := range res.Query {
		qi := cfg.Base.Warmup + i
		if cfg.Hits[qi] {
			if resp != res.CacheResp[i] {
				t.Fatalf("hit %d: end-to-end %.3f != cache response %.3f", qi, resp, res.CacheResp[i])
			}
			continue
		}
		want := res.CacheResp[i] + res.StoreResp[si]
		si++
		if math.Abs(resp-want) > 1e-9 {
			t.Fatalf("miss %d: end-to-end %.3f != cache %.3f + store", qi, resp, want)
		}
	}
}

// TestTieredFullFanOut checks TierDelay = 0: no query is shielded,
// every query dispatches a store sub-query at its arrival, and a
// hit's response is the faster of its two tiers.
func TestTieredFullFanOut(t *testing.T) {
	cfg := tieredFixture(t, 400, 100, 0.6, 0)
	tv, err := NewTiered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := tv.Run(reissue.None{}, reissue.None{})
	if res.TierRate != 1 {
		t.Errorf("TierRate %.4f, want 1 with a zero tier delay", res.TierRate)
	}
	for i, resp := range res.Query {
		qi := cfg.Base.Warmup + i
		want := res.StoreResp[i]
		if cfg.Hits[qi] {
			want = math.Min(res.CacheResp[i], res.StoreResp[i])
		}
		if math.Abs(resp-want) > 1e-9 {
			t.Fatalf("query %d: end-to-end %.3f, want %.3f", qi, resp, want)
		}
	}
}

// TestTieredShieldingMasksStoreLoad checks that shielded queries
// occupy no store capacity: with every query a fast hit and an
// infinite tier delay, the store tier must be completely idle.
func TestTieredShieldingMasksStoreLoad(t *testing.T) {
	cfg := tieredFixture(t, 300, 50, 1.0, math.Inf(1))
	tv, err := NewTiered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := tv.Run(reissue.None{}, reissue.None{})
	if res.TierRate != 0 || len(res.StoreResp) != 0 {
		t.Fatalf("all-hit workload dispatched store sub-queries: rate %.4f, %d responses", res.TierRate, len(res.StoreResp))
	}
	if res.HitRate != 1 {
		t.Fatalf("HitRate %.4f, want 1", res.HitRate)
	}
}

// TestTieredReissueRates checks the per-tier rate denominators with
// immediate coin-flip policies: a D=0 SingleR is never suppressed by
// the completion check, so each tier's measured rate must sit near
// its coin probability — the store's over only its dispatched
// sub-queries.
func TestTieredReissueRates(t *testing.T) {
	cfg := tieredFixture(t, 1200, 200, 0.5, math.Inf(1))
	tv, err := NewTiered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := tv.Run(reissue.SingleR{D: 0, Q: 0.4}, reissue.SingleR{D: 0, Q: 0.3})
	if math.Abs(res.CacheRate-0.4) > 0.05 {
		t.Errorf("cache reissue rate %.4f far from Q=0.4", res.CacheRate)
	}
	if math.Abs(res.StoreRate-0.3) > 0.06 {
		t.Errorf("store reissue rate %.4f far from Q=0.3", res.StoreRate)
	}
}

// TestTieredProactiveHedgeTrimsMissTail checks the tier-delay payoff
// on the all-miss workload, where it is deterministic: every query
// reaches the store in both regimes (identical store load), but the
// proactive hedge dispatches at the small tier delay instead of
// waiting for the cache to resolve the miss — so every query's
// end-to-end response improves by the miss-resolution time it no
// longer serializes behind.
func TestTieredProactiveHedgeTrimsMissTail(t *testing.T) {
	run := func(delay float64) *TieredResult {
		cfg := tieredFixture(t, 1000, 200, 0.0, delay)
		tv, err := NewTiered(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tv.Run(reissue.None{}, reissue.None{})
	}
	fallthru := run(math.Inf(1))
	proactive := run(0.25)
	if proactive.TierRate != 1 || fallthru.TierRate != 1 {
		t.Fatalf("all-miss workload did not dispatch every store sub-query: %.4f / %.4f",
			proactive.TierRate, fallthru.TierRate)
	}
	pf, pp := fallthru.TailLatency(0.99), proactive.TailLatency(0.99)
	if pp >= pf {
		t.Errorf("proactive P99 %.3f not below fall-through %.3f on the all-miss workload", pp, pf)
	}
}

// TestTieredDeterministic pins the replay contract: two runs of the
// same Tiered under the same policies are byte-identical.
func TestTieredDeterministic(t *testing.T) {
	cfg := tieredFixture(t, 400, 100, 0.5, 2)
	tv, err := NewTiered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pol := reissue.SingleR{D: 2, Q: 0.3}
	a := tv.Run(pol, pol)
	b := tv.Run(pol, pol)
	if len(a.Query) != len(b.Query) {
		t.Fatal("run lengths differ")
	}
	for i := range a.Query {
		if a.Query[i] != b.Query[i] {
			t.Fatalf("query %d differs across identical runs: %v vs %v", i, a.Query[i], b.Query[i])
		}
	}
	if a.TierRate != b.TierRate || a.CacheRate != b.CacheRate || a.StoreRate != b.StoreRate {
		t.Fatalf("rates differ across identical runs: %+v vs %+v", a, b)
	}
}
