package cluster

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/reissue"
)

func TestSpeedFactorsValidation(t *testing.T) {
	src := DistSource{Dist: stats.NewExponential(1)}
	if _, err := New(Config{
		Servers: 2, ArrivalRate: 0.1, Queries: 10, Source: src,
		SpeedFactors: []float64{1},
	}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := New(Config{
		Servers: 2, ArrivalRate: 0.1, Queries: 10, Source: src,
		SpeedFactors: []float64{1, 0},
	}); err == nil {
		t.Error("zero factor accepted")
	}
}

func TestSpeedFactorsSlowServer(t *testing.T) {
	dist := stats.NewExponential(0.1)
	mk := func(factors []float64) *Result {
		c, err := New(Config{
			Servers:      5,
			ArrivalRate:  ArrivalRateForUtilization(0.3, 5, dist.Mean()),
			Queries:      20000,
			Warmup:       2000,
			Source:       DistSource{Dist: dist},
			Seed:         51,
			SpeedFactors: factors,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c.RunDetailed(reissue.None{})
	}
	uniform := mk(nil)
	// One replica at one-third speed: the straggler drags the tail.
	skewed := mk([]float64{3, 1, 1, 1, 1})
	pU := metrics.TailLatency(uniform.Log.ResponseTimes(), 99)
	pS := metrics.TailLatency(skewed.Log.ResponseTimes(), 99)
	if pS <= pU {
		t.Fatalf("straggler did not hurt P99: %v vs %v", pS, pU)
	}
}

func TestHedgingDodgesStraggler(t *testing.T) {
	// With a permanent straggler, a fifth of requests land on a 3x
	// slower server; hedging reissues them elsewhere. Tune SingleR
	// adaptively and require a solid P99 reduction.
	dist := stats.NewExponential(0.1)
	c, err := New(Config{
		Servers:      5,
		ArrivalRate:  ArrivalRateForUtilization(0.3, 5, dist.Mean()),
		Queries:      20000,
		Warmup:       2000,
		Source:       DistSource{Dist: dist},
		Seed:         53,
		SpeedFactors: []float64{3, 1, 1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := metrics.TailLatency(c.RunDetailed(reissue.None{}).Log.ResponseTimes(), 99)
	ar, err := reissue.AdaptiveOptimize(c, reissue.AdaptiveConfig{
		K: 0.99, B: 0.25, Lambda: 0.5, Trials: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := ar.Final.TailLatency(0.99)
	if got >= base*0.8 {
		t.Fatalf("hedging failed to dodge the straggler: %v vs baseline %v", got, base)
	}
}
