package cluster

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/reissue"
	"repro/reissue/hedge/backend"
)

func shardTraces(n, shards int) []ServiceSource {
	// Deterministic per-shard traces with distinct shapes: shard s's
	// query i holds for 1 + ((i*7+s*3) mod 5) time units.
	out := make([]ServiceSource, shards)
	for s := 0; s < shards; s++ {
		times := make([]float64, n)
		for i := range times {
			times[i] = float64(1 + (i*7+s*3)%5)
		}
		out[s] = &TraceSource{Times: times}
	}
	return out
}

func shardedBase(queries int) Config {
	return Config{
		Servers:     3,
		ArrivalRate: 0.5,
		Queries:     queries,
		Warmup:      50,
		Seed:        9,
		LB:          HashedLB{},
	}
}

func TestNewShardedValidation(t *testing.T) {
	if _, err := NewSharded(ShardedConfig{Base: shardedBase(100)}); err == nil {
		t.Error("NewSharded accepted zero shards")
	}
	cfg := ShardedConfig{Base: shardedBase(100), Sources: shardTraces(100, 2)}
	cfg.Base.FanOut = 2
	if _, err := NewSharded(cfg); err == nil {
		t.Error("NewSharded accepted Base.FanOut > 1")
	}
	cfg = ShardedConfig{Base: shardedBase(0), Sources: shardTraces(10, 2)}
	if _, err := NewSharded(cfg); err == nil {
		t.Error("NewSharded accepted an invalid per-shard config")
	}
}

// TestShardedOneShardDegeneratesExactly pins the composition contract:
// a one-shard Sharded is byte-identical to the plain Cluster it wraps
// (same arrival, service, coin, and placement streams).
func TestShardedOneShardDegeneratesExactly(t *testing.T) {
	const n = 400
	base := shardedBase(n)
	sh, err := NewSharded(ShardedConfig{Base: base, Sources: shardTraces(n, 1)})
	if err != nil {
		t.Fatal(err)
	}
	plain := base
	plain.Source = shardTraces(n, 1)[0]
	cl, err := New(plain)
	if err != nil {
		t.Fatal(err)
	}
	pol := reissue.SingleR{D: 2, Q: 0.4}
	got := sh.Run(pol)
	want := cl.Run(pol)
	if len(got.Query) != len(want.Query) {
		t.Fatalf("lengths differ: %d vs %d", len(got.Query), len(want.Query))
	}
	for i := range got.Query {
		if got.Query[i] != want.Query[i] {
			t.Fatalf("query %d: sharded %v != plain %v", i, got.Query[i], want.Query[i])
		}
	}
	if got.MeanRate != want.ReissueRate {
		t.Fatalf("reissue rate %v != %v", got.MeanRate, want.ReissueRate)
	}
}

// TestShardedSharesArrivalsDecorrelatesCoins checks the dependence
// structure the composition promises: identical arrival instants on
// every shard, independent reissue coin streams per shard.
func TestShardedSharesArrivalsDecorrelatesCoins(t *testing.T) {
	const n = 600
	sh, err := NewSharded(ShardedConfig{Base: shardedBase(n), Sources: shardTraces(n, 3)})
	if err != nil {
		t.Fatal(err)
	}
	res := sh.Run(reissue.SingleR{D: 0, Q: 0.5})
	for s := 1; s < sh.NumShards(); s++ {
		recs0 := res.PerShard[0].Log.Records
		recs := res.PerShard[s].Log.Records
		agree := 0
		for i := range recs {
			if recs[i].Arrival != recs0[i].Arrival {
				t.Fatalf("shard %d query %d arrival %v != shard 0's %v", s, i, recs[i].Arrival, recs0[i].Arrival)
			}
			if recs[i].Reissued == recs0[i].Reissued {
				agree++
			}
		}
		// With D=0 the completion check never interferes, so the coin
		// of query i fires independently per shard: agreement must sit
		// near 1/2, nowhere near the 100% a shared stream would give.
		frac := float64(agree) / float64(len(recs))
		if frac > 0.65 || frac < 0.35 {
			t.Errorf("shard %d coin agreement with shard 0 = %.2f, want ~0.5 (independent)", s, frac)
		}
		if rate := res.ShardRates[s]; math.Abs(rate-0.5) > 0.08 {
			t.Errorf("shard %d reissue rate %.3f far from Q=0.5", s, rate)
		}
	}
}

// TestShardedMaxOverShards checks the end-to-end merge: every merged
// response is the max over the shards' per-query responses, and the
// max-over-shards tail dominates every single shard's tail.
func TestShardedMaxOverShards(t *testing.T) {
	const n = 500
	sh, err := NewSharded(ShardedConfig{Base: shardedBase(n), Sources: shardTraces(n, 4)})
	if err != nil {
		t.Fatal(err)
	}
	res := sh.Run(reissue.None{})
	for i := range res.Query {
		max := 0.0
		for s := range res.PerShard {
			if rt := res.PerShard[s].Log.Records[i].Response; rt > max {
				max = rt
			}
		}
		if res.Query[i] != max {
			t.Fatalf("query %d: merged %v != max-over-shards %v", i, res.Query[i], max)
		}
	}
	e2e := res.TailLatency(0.9)
	for s := range res.PerShard {
		shard := reissue.RunResult{Query: res.PerShard[s].Log.ResponseTimes()}.TailLatency(0.9)
		if shard > e2e {
			t.Fatalf("shard %d P90 %v exceeds end-to-end P90 %v", s, shard, e2e)
		}
	}
}

// TestHashedLBPlacement checks HashedLB's contract on a plain
// cluster: every query's primary goes to hashReplica(id, n). The
// chosen server is not directly observable, so the test marks each
// server with a distinct speed factor and runs at near-zero load:
// the primary's response then equals service * speed of its server.
func TestHashedLBPlacement(t *testing.T) {
	// Speed factors pick out the chosen server: at zero load, the
	// primary's response time is service * speed[hashReplica(id, n)].
	const n = 64
	speeds := []float64{1, 2, 4}
	times := make([]float64, n)
	for i := range times {
		times[i] = 1
	}
	cl, err := New(Config{
		Servers:      3,
		ArrivalRate:  0.001, // essentially sequential: no queueing
		Queries:      n,
		Source:       &TraceSource{Times: times},
		SpeedFactors: speeds,
		LB:           HashedLB{},
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := cl.RunDetailed(reissue.None{})
	for i, rec := range res.Log.Records {
		want := speeds[hashReplica(i, 3)]
		if math.Abs(rec.Primary-want) > 1e-9 {
			t.Fatalf("query %d: primary response %v, want %v (hashed placement)", i, rec.Primary, want)
		}
	}
}

// TestPolicySeedDecouplesCoins checks the PolicySeed override: same
// Seed, different PolicySeed must flip different coins while keeping
// the arrival stream identical; PolicySeed zero preserves the
// historical stream bit for bit.
func TestPolicySeedDecouplesCoins(t *testing.T) {
	mk := func(policySeed uint64) *Result {
		cfg := shardedBase(400)
		cfg.LB = nil // default RandomLB, the historical configuration
		cfg.Source = shardTraces(400, 1)[0]
		cfg.PolicySeed = policySeed
		cl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return cl.RunDetailed(reissue.SingleR{D: 0, Q: 0.5})
	}
	legacy, again := mk(0), mk(0)
	for i := range legacy.Log.Records {
		if legacy.Log.Records[i].Reissued != again.Log.Records[i].Reissued {
			t.Fatal("PolicySeed=0 runs are not reproducible")
		}
	}
	other := mk(0xfeedface)
	same := 0
	for i := range legacy.Log.Records {
		if legacy.Log.Records[i].Arrival != other.Log.Records[i].Arrival {
			t.Fatal("PolicySeed changed the arrival stream")
		}
		if legacy.Log.Records[i].Reissued == other.Log.Records[i].Reissued {
			same++
		}
	}
	if frac := float64(same) / float64(len(legacy.Log.Records)); frac > 0.65 {
		t.Fatalf("coin agreement %.2f with a different PolicySeed, want ~0.5", frac)
	}
}

// TestHashReplicaMatchesPrimaryReplica pins hashReplica against the
// live runtime's backend.PrimaryReplica bit for bit — the duplication
// exists only because this package cannot import the backend without
// inverting the dependency direction, and HashedLB's whole point is
// reproducing the live placement exactly.
func TestHashReplicaMatchesPrimaryReplica(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 17} {
		for i := 0; i < 5000; i++ {
			if got, want := hashReplica(i, n), backend.PrimaryReplica(i, n); got != want {
				t.Fatalf("hashReplica(%d, %d) = %d, backend.PrimaryReplica = %d", i, n, got, want)
			}
		}
	}
}

// TestShardedStochasticSourcesIndependent checks that a sharded run
// over stochastic sources draws independent service times per shard:
// each shard serves its own slice of the data, so DistSource shards
// must not replay shard 0's draws (ServiceSeed salting), while the
// arrival instants stay shared.
func TestShardedStochasticSourcesIndependent(t *testing.T) {
	const n = 500
	base := shardedBase(n)
	srcs := make([]ServiceSource, 3)
	for s := range srcs {
		srcs[s] = DistSource{Dist: stats.NewExponential(1)}
	}
	sh, err := NewSharded(ShardedConfig{Base: base, Sources: srcs})
	if err != nil {
		t.Fatal(err)
	}
	res := sh.Run(reissue.None{})
	recs0 := res.PerShard[0].Log.Records
	for s := 1; s < sh.NumShards(); s++ {
		recs := res.PerShard[s].Log.Records
		same := 0
		for i := range recs {
			if recs[i].Arrival != recs0[i].Arrival {
				t.Fatalf("shard %d query %d arrival differs from shard 0", s, i)
			}
			// At near-unique float64 service draws, identical primary
			// response times identify a replayed stream.
			if recs[i].Primary == recs0[i].Primary {
				same++
			}
		}
		if same > len(recs)/20 {
			t.Errorf("shard %d replayed %d/%d of shard 0's service draws — streams not independent", s, same, len(recs))
		}
	}
}
