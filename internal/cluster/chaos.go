package cluster

import (
	"fmt"

	"repro/reissue/hedge/fault"
)

// FaultPlan mirrors the live fault injector (reissue/hedge/fault) in
// the simulator: the SAME fault.Profile script, consulted through the
// same pure fault.Decide function on the same (query, copy-ordinal,
// server) keys, so both worlds fail exactly the same copies. Crash
// and error-rate copies fail at dispatch and never occupy a server
// (the live injector fails them before the backend sees them); a
// stalled copy is dropped at dispatch and never completes (live it
// hangs until its context dies); a slow copy's completion report is
// deferred by (Factor-1)x its response — an edge-latency stretch that
// leaves server capacity untouched, matching the injector holding a
// completed copy.
//
// The breaker mirror re-implements hedge.Breaker's transitions on
// virtual time: BreakerThreshold consecutive failures open a server,
// BreakerCooldown model-ms later probes are admitted, a probe's
// outcome closes or re-opens it, and copies intended for an open
// server re-route to the next server in mod-R order (the routing
// seam) — failing fast when every server is open. Failures report at
// dispatch time and successes at completion time, the same
// event-order discipline the live injector follows.
type FaultPlan struct {
	// Profiles is the fault script, shared verbatim with the live
	// injector.
	Profiles []fault.Profile
	// BreakerThreshold is the consecutive-failure trip count; 0
	// disables the breaker mirror.
	BreakerThreshold int
	// BreakerCooldown is the open window in model milliseconds
	// (hedge.BreakerConfig.Cooldown / Unit on the live side).
	BreakerCooldown float64
}

func (fp *FaultPlan) validate(servers int) error {
	if servers <= 0 {
		return fmt.Errorf("cluster: Faults requires finite Servers, got %d", servers)
	}
	if err := fault.Validate(fp.Profiles, servers); err != nil {
		return err
	}
	if fp.BreakerThreshold < 0 {
		return fmt.Errorf("cluster: negative BreakerThreshold %d", fp.BreakerThreshold)
	}
	if fp.BreakerThreshold > 0 && fp.BreakerCooldown <= 0 {
		return fmt.Errorf("cluster: BreakerThreshold %d needs positive BreakerCooldown, got %g",
			fp.BreakerThreshold, fp.BreakerCooldown)
	}
	return nil
}

// chaosServer is one server's breaker-mirror state; the transitions
// are hedge.Breaker's, with float64 model time in place of
// time.Time.
type chaosServer struct {
	consec    int
	open      bool
	openUntil float64
	trips     int
}

// chaosState is the pooled per-run chaos machinery.
type chaosState struct {
	plan    *FaultPlan
	servers []chaosServer

	failed   int // copies failed at dispatch (Crash, Flap, ErrorRate)
	stalled  int // copies dropped into a stall
	rerouted int // copies steered off an open server
	rejected int // copies failed fast with every server open
}

func (cs *chaosState) reset(plan *FaultPlan, n int) {
	cs.plan = plan
	if cap(cs.servers) < n {
		cs.servers = make([]chaosServer, n)
	} else {
		cs.servers = cs.servers[:n]
	}
	for i := range cs.servers {
		cs.servers[i] = chaosServer{}
	}
	cs.failed, cs.stalled, cs.rerouted, cs.rejected = 0, 0, 0, 0
}

// route mirrors hedge.Breaker.Route: the first server in intended,
// intended+1, ... mod R order that is closed or due a half-open
// probe. ok=false means every server is open and cooling down.
func (cs *chaosState) route(intended int, now float64) (int, bool) {
	if cs.plan.BreakerThreshold <= 0 {
		return intended, true
	}
	n := len(cs.servers)
	for k := 0; k < n; k++ {
		i := (intended + k) % n
		st := &cs.servers[i]
		if !st.open || now >= st.openUntil {
			return i, true
		}
	}
	return intended, false
}

// report mirrors hedge.Breaker.Report on virtual time.
func (cs *chaosState) report(server int, ok bool, now float64) {
	if cs.plan.BreakerThreshold <= 0 {
		return
	}
	st := &cs.servers[server]
	if ok {
		if st.open {
			if now >= st.openUntil {
				st.open = false
				st.consec = 0
			}
			return
		}
		st.consec = 0
		return
	}
	if st.open {
		if now >= st.openUntil {
			st.openUntil = now + cs.plan.BreakerCooldown
		}
		return
	}
	st.consec++
	if st.consec >= cs.plan.BreakerThreshold {
		st.open = true
		st.openUntil = now + cs.plan.BreakerCooldown
		st.trips++
		st.consec = 0
	}
}

// copyOrdinal is the copy's fault-stream key: 0 for the primary, the
// reissue ordinal otherwise. For single-delay policies this equals
// the live attempt slot, which is what keeps the two worlds' ErrorRate
// coins aligned; the chaos agreement tests run single-delay anchors.
func copyOrdinal(r *request) int {
	if r.reissue {
		return r.q.reissues
	}
	return 0
}
