package cluster

import (
	"testing"

	"repro/internal/stats"
	"repro/reissue"
	"repro/reissue/hedge/fault"
)

func chaosConfig(queries int, plan *FaultPlan) Config {
	dist := stats.NewExponential(0.1) // mean 10 model-ms
	return Config{
		Servers:     3,
		ArrivalRate: ArrivalRateForUtilization(0.3, 3, dist.Mean()),
		Queries:     queries,
		Source:      DistSource{Dist: dist},
		LB:          HashedLB{},
		Seed:        11,
		Faults:      plan,
	}
}

func TestFaultPlanValidation(t *testing.T) {
	dist := stats.NewExponential(0.1)
	bad := []Config{
		// Chaos needs a finite fleet to route over.
		{Queries: 10, ArrivalRate: 1, Source: DistSource{Dist: dist},
			Faults: &FaultPlan{Profiles: []fault.Profile{{Replica: 0, Kind: fault.Crash}}}},
		// Profile replica out of range.
		chaosConfig(10, &FaultPlan{Profiles: []fault.Profile{{Replica: 3, Kind: fault.Crash}}}),
		// ErrorRate without a rate.
		chaosConfig(10, &FaultPlan{Profiles: []fault.Profile{{Replica: 0, Kind: fault.ErrorRate}}}),
		// Breaker armed without a cooldown.
		chaosConfig(10, &FaultPlan{BreakerThreshold: 2}),
		// Negative threshold.
		chaosConfig(10, &FaultPlan{BreakerThreshold: -1, BreakerCooldown: 10}),
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad chaos config %d accepted", i)
		}
	}
}

// TestChaosCrashBreakerDeterministic pins the breaker mirror's exact
// counters under a permanent crash: the faulted server absorbs
// exactly Threshold dispatch failures, trips once, never half-opens
// (cooldown outlives the run), and every later copy intended for it
// re-routes and succeeds.
func TestChaosCrashBreakerDeterministic(t *testing.T) {
	c := mustCluster(t, chaosConfig(2000, &FaultPlan{
		Profiles:         []fault.Profile{{Replica: 0, Kind: fault.Crash}},
		BreakerThreshold: 3,
		BreakerCooldown:  1e9,
	}))
	res := c.RunDetailed(reissue.None{})

	if res.FaultedCopies != 3 {
		t.Errorf("FaultedCopies = %d, want exactly Threshold=3 (rest re-routed)", res.FaultedCopies)
	}
	if got := res.BreakerTrips[0]; got != 1 {
		t.Errorf("BreakerTrips[0] = %d, want 1", got)
	}
	if res.BreakerTrips[1] != 0 || res.BreakerTrips[2] != 0 {
		t.Errorf("healthy servers tripped: %v", res.BreakerTrips)
	}
	if !res.BreakerOpen[0] || res.BreakerOpen[1] || res.BreakerOpen[2] {
		t.Errorf("BreakerOpen = %v, want [true false false]", res.BreakerOpen)
	}
	if res.ReroutedCopies == 0 {
		t.Error("ReroutedCopies = 0, want copies steered off the dead server")
	}
	if res.FailedQueries != 3 {
		t.Errorf("FailedQueries = %d, want the 3 pre-trip casualties", res.FailedQueries)
	}
	if want := 3.0 / 2000.0; res.FailureRate != want {
		t.Errorf("FailureRate = %v, want %v", res.FailureRate, want)
	}
	if got := res.Log.Len(); got != 2000-3 {
		t.Errorf("log has %d records, want %d — failed queries must not log", got, 2000-3)
	}
}

// TestChaosStallReissueRescues: a stalled primary never completes,
// but the hashed reissue lands one server over and answers; no query
// fails and stalled copies are dropped, not queued.
func TestChaosStallReissueRescues(t *testing.T) {
	c := mustCluster(t, chaosConfig(1500, &FaultPlan{
		Profiles: []fault.Profile{{Replica: 0, Kind: fault.Stall}},
	}))
	res := c.RunDetailed(reissue.SingleR{D: 0.01, Q: 1})

	if res.StalledCopies == 0 {
		t.Fatal("StalledCopies = 0, want the dead server's copies stalled")
	}
	if res.FailedQueries != 0 {
		t.Errorf("FailedQueries = %d, want 0 — the reissue rescues every stalled primary", res.FailedQueries)
	}
	if got := res.Log.Len(); got != 1500 {
		t.Errorf("log has %d records, want 1500", got)
	}
}

// TestChaosErrorRateAndSlowDeterministic: the coin stream and the
// slow-edge stretch are pure functions of the seed and script, so two
// identical runs agree bit-for-bit, and the stretch moves the tail
// without failing anything.
func TestChaosErrorRateAndSlowDeterministic(t *testing.T) {
	plan := &FaultPlan{Profiles: []fault.Profile{
		{Replica: 1, Kind: fault.ErrorRate, Rate: 0.3, Seed: 7},
		{Replica: 2, Kind: fault.Slow, Factor: 4},
	}}
	run := func() *Result {
		return mustCluster(t, chaosConfig(3000, plan)).RunDetailed(reissue.SingleR{D: 5, Q: 0.3})
	}
	a, b := run(), run()
	if a.FaultedCopies != b.FaultedCopies || a.FailedQueries != b.FailedQueries ||
		a.FailureRate != b.FailureRate || a.ReissueRate != b.ReissueRate {
		t.Errorf("chaos runs diverged: %+v vs %+v", a, b)
	}
	if a.FaultedCopies == 0 {
		t.Error("FaultedCopies = 0, want error-rate coin flips landing")
	}

	clean := mustCluster(t, chaosConfig(3000, nil)).RunDetailed(reissue.SingleR{D: 5, Q: 0.3})
	slowTail := stats.Summarize(a.Log.ResponseTimes()).Max
	cleanTail := stats.Summarize(clean.Log.ResponseTimes()).Max
	if slowTail <= cleanTail {
		t.Errorf("slow-fault max response %v <= clean max %v, want a stretched tail", slowTail, cleanTail)
	}
}
