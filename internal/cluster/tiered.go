package cluster

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/reissue"
)

// TierConfig describes one tier of a two-tier (cache -> store)
// deployment: that tier's replica fleet and its own service-time
// source (typically a TraceSource over the tier's calibrated
// effective times).
type TierConfig struct {
	// Servers is the tier's replica count.
	Servers int
	// SpeedFactors optionally gives each replica a static service-
	// time multiplier; length must equal Servers when set.
	SpeedFactors []float64
	// Source generates the tier's per-query service times.
	Source ServiceSource
}

// TieredConfig describes a two-tier deployment: a fast-but-fallible
// cache tier backed by a slow-but-authoritative store tier. Every
// query goes to the cache tier at its arrival instant; queries the
// cache cannot answer (the shared Bernoulli miss stream) — and, with
// a finite TierDelay, queries the cache has not answered by that
// delay — dispatch a store sub-query. The query completes when the
// first tier produces a valid answer.
type TieredConfig struct {
	// Base is the shared template: ArrivalRate, Queries, Warmup,
	// Seed, LB, Discipline, PolicySeed, FreshPerRun. Base.Source,
	// Base.Servers, and Base.SpeedFactors are ignored (the per-tier
	// configs supply them) and Base.FanOut must be unset.
	Base Config
	// Cache and Store describe the two tiers' fleets and traces.
	Cache, Store TierConfig
	// Hits[i] reports whether query i hits the cache — the Bernoulli
	// stream that must be shared bit-for-bit with the live path
	// (kvstore.CacheWorkload.Hits) so both worlds miss on the same
	// queries. Length must cover Queries + Warmup.
	Hits []bool
	// TierDelay is the proactive tier-reissue delay in model
	// milliseconds: a store sub-query dispatches at the query's
	// arrival + TierDelay unless the cache already answered (the
	// completion check), or earlier, the moment the cache reports a
	// miss. math.Inf(1) disables the proactive hedge — the store is
	// consulted only on an observed miss (pure fall-through); 0 fans
	// every query out to both tiers at once.
	TierDelay float64
}

// tierSalt decorrelates the store tier's policy-coin stream from the
// cache tier's: the two tiers run independent hedging clients live,
// so their reissue coins must be independent streams over the shared
// base seed. The live runtime (reissue/hedge/tier) salts its store
// client's seed with the same stats.Mix64NonZero(1); as with the
// sharded composition, the correspondence is structural — independent
// streams, not bit-identical coins.
func tierSalt() uint64 { return stats.Mix64NonZero(1) }

// Tiered simulates the two-tier deployment as two per-tier Clusters
// sharing one arrival process (same Seed — a store sub-query's
// dispatch is the query's arrival shifted by the tier-delay rule,
// and shifting arrivals leaves queueing untouched) with
// PolicySeed-decorrelated reissue coins. The store tier replays every
// arrival instant, but queries the cache shields (hits answered
// within TierDelay) are masked to zero service, so they occupy no
// store capacity — the store fleet serves exactly the fall-through
// and proactive-hedge load, as the live tier client sends it. Like
// Cluster, a Tiered must not execute two Runs concurrently.
type Tiered struct {
	cache, store *Cluster
	masked       *maskedSource
	hits         []bool
	delay        float64
	total        int
	warmup       int
}

// maskedSource wraps a tier's service source, zeroing the service
// times of shielded queries while still consuming the inner source's
// stream in query order — so the non-shielded queries' draws are
// independent of which queries the cache happened to shield.
type maskedSource struct {
	inner    ServiceSource
	shielded []bool
	next     int
}

func (m *maskedSource) Sample(r *stats.RNG) (float64, float64) {
	p, re := m.inner.Sample(r)
	if m.next < len(m.shielded) && m.shielded[m.next] {
		p, re = 0, 0
	}
	m.next++
	return p, re
}

func (m *maskedSource) Reset() {
	m.inner.Reset()
	m.next = 0
}

// NewTiered validates the configuration and builds the per-tier
// clusters. The cache tier keeps the template's coin stream
// untouched; the store tier's is salted with tierSalt.
func NewTiered(cfg TieredConfig) (*Tiered, error) {
	if cfg.Base.FanOut > 1 {
		return nil, fmt.Errorf("cluster: TieredConfig.Base.FanOut=%d must be unset — tiers are not a fan-out", cfg.Base.FanOut)
	}
	total := cfg.Base.Queries + cfg.Base.Warmup
	if len(cfg.Hits) < total {
		return nil, fmt.Errorf("cluster: %d cache-hit bits for %d queries — the live and simulated runs must share one stream", len(cfg.Hits), total)
	}
	if math.IsNaN(cfg.TierDelay) || cfg.TierDelay < 0 {
		return nil, fmt.Errorf("cluster: TierDelay=%v must be non-negative (math.Inf(1) disables the proactive hedge)", cfg.TierDelay)
	}
	// A slice, not a map: validation must report the same tier first
	// on every run (map iteration order would make the error message
	// nondeterministic when both tiers are misconfigured).
	for _, tier := range []struct {
		name string
		tc   TierConfig
	}{{"cache", cfg.Cache}, {"store", cfg.Store}} {
		name, tc := tier.name, tier.tc
		if tc.Source == nil {
			return nil, fmt.Errorf("cluster: %s tier needs a service source", name)
		}
		if tc.Servers <= 0 {
			return nil, fmt.Errorf("cluster: %s tier Servers=%d must be positive", name, tc.Servers)
		}
	}
	// Both tier clusters measure every query (Warmup=0 internally):
	// the store tier's per-query mask and the end-to-end merge need
	// the warmup queries' cache responses too. Tiered trims warmup
	// itself when it collects statistics.
	tierCluster := func(tc TierConfig, policySalt uint64, src ServiceSource) (*Cluster, error) {
		c := cfg.Base
		c.Servers = tc.Servers
		c.SpeedFactors = tc.SpeedFactors
		c.Source = src
		c.Queries = total
		c.Warmup = 0
		c.FanOut = 0
		if policySalt != 0 {
			c.PolicySeed = cfg.Base.PolicySeed ^ policySalt
		}
		return New(c)
	}
	masked := &maskedSource{inner: cfg.Store.Source, shielded: make([]bool, total)}
	if ts, ok := cfg.Store.Source.(*TraceSource); ok && len(ts.Times) == 0 {
		return nil, fmt.Errorf("cluster: store tier TraceSource has no service times")
	}
	cache, err := tierCluster(cfg.Cache, 0, cfg.Cache.Source)
	if err != nil {
		return nil, fmt.Errorf("cache tier: %w", err)
	}
	store, err := tierCluster(cfg.Store, tierSalt(), masked)
	if err != nil {
		return nil, fmt.Errorf("store tier: %w", err)
	}
	return &Tiered{
		cache: cache, store: store, masked: masked,
		hits: cfg.Hits, delay: cfg.TierDelay,
		total: total, warmup: cfg.Base.Warmup,
	}, nil
}

// CacheCluster and StoreCluster expose the per-tier clusters
// (configuration inspection; their Run methods measure a tier in
// isolation, which is not the tiered statistic).
func (tv *Tiered) CacheCluster() *Cluster { return tv.cache }
func (tv *Tiered) StoreCluster() *Cluster { return tv.store }

// TieredResult is the outcome of one tiered run.
type TieredResult struct {
	// Query holds, per measured query in query order, the end-to-end
	// response time: the first valid answer from either tier.
	Query []float64
	// CacheResp holds every measured query's cache sub-query response
	// time (hits and misses both occupy the cache tier).
	CacheResp []float64
	// StoreResp holds the store sub-query response times of the
	// measured queries that dispatched one (misses, plus hits slower
	// than the tier delay), in query order.
	StoreResp []float64
	// CacheRate and StoreRate are the tiers' within-tier reissue
	// rates: reissue copies over that tier's dispatched sub-queries
	// (every measured query for the cache; only fall-through and
	// proactive sub-queries for the store).
	CacheRate, StoreRate float64
	// TierRate is the fraction of measured queries that dispatched a
	// store sub-query — the tier-level reissue statistic the
	// TierDelay knob controls.
	TierRate float64
	// HitRate is the realized cache-hit fraction over measured
	// queries.
	HitRate float64
}

// TailLatency returns the k-th quantile (k in (0,1)) of the
// end-to-end response times, with the same nearest-rank formula as
// the single-tier RunResult.
func (r *TieredResult) TailLatency(k float64) float64 {
	return reissue.RunResult{Query: r.Query}.TailLatency(k)
}

// Run simulates one tiered run: the cache tier replays every arrival
// under cachePol; its per-query responses and the shared hit stream
// decide which queries reach the store tier (and shield the rest to
// zero store service); the store tier then replays the same arrival
// instants under storePol; and the merge composes each query's
// end-to-end response exactly as the live tier client resolves it —
// a shielded hit completes at its cache response, a slow hit at the
// earlier of its cache response and TierDelay + its store response,
// and a miss at min(TierDelay, cache response) + its store response
// (the store dispatches at the tier delay or the moment the miss is
// known, whichever comes first).
func (tv *Tiered) Run(cachePol, storePol reissue.Policy) *TieredResult {
	cacheRes := tv.cache.RunDetailed(cachePol)
	crt := cacheRes.Log.ResponseTimes()
	if len(crt) != tv.total {
		panic(fmt.Sprintf("cluster: cache tier measured %d queries, want %d", len(crt), tv.total))
	}
	for i := 0; i < tv.total; i++ {
		tv.masked.shielded[i] = tv.hits[i] && crt[i] <= tv.delay
	}
	storeRes := tv.store.RunDetailed(storePol)
	srt := storeRes.Log.ResponseTimes()

	measured := tv.total - tv.warmup
	out := &TieredResult{
		Query:     make([]float64, 0, measured),
		CacheResp: make([]float64, 0, measured),
	}
	hits, dispatched := 0, 0
	cacheCopies, storeCopies := 0, 0
	for i := tv.warmup; i < tv.total; i++ {
		cresp := crt[i]
		out.CacheResp = append(out.CacheResp, cresp)
		cacheCopies += cacheRes.Log.Records[i].Reissues
		if tv.hits[i] {
			hits++
		}
		var resp float64
		switch {
		case tv.masked.shielded[i]:
			// Hit answered within the tier delay: the store sub-query
			// was never sent (the completion check).
			resp = cresp
		case tv.hits[i]:
			// Slow hit: the proactive store copy dispatched at
			// TierDelay races the cache answer; first valid wins.
			resp = math.Min(cresp, tv.delay+srt[i])
		default:
			// Miss: the store dispatches at the tier delay or when
			// the miss is known, whichever is earlier, and only the
			// store can answer.
			resp = math.Min(tv.delay, cresp) + srt[i]
		}
		if !tv.masked.shielded[i] {
			dispatched++
			out.StoreResp = append(out.StoreResp, srt[i])
			storeCopies += storeRes.Log.Records[i].Reissues
		}
		out.Query = append(out.Query, resp)
	}
	out.HitRate = float64(hits) / float64(measured)
	out.TierRate = float64(dispatched) / float64(measured)
	out.CacheRate = float64(cacheCopies) / float64(measured)
	if dispatched > 0 {
		out.StoreRate = float64(storeCopies) / float64(dispatched)
	}
	return out
}
