package cluster

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/reissue"
)

// This file composes the existing simulator pairings — Sharded's
// max-over-shards merge and Tiered's shield/merge rules — into an
// arbitrary service graph, so the simulator stays a valid twin of any
// topology the live Source combinators can wire (a cache tier over a
// sharded store, per-shard caches, deeper stacks). A Graph is a tree
// of nodes: leaves are ordinary Clusters over one fleet's trace,
// shard nodes max-merge their children, and tier nodes run their
// cache subtree first, shield the fast hits, then run their store
// subtree over the same arrival instants with the shielded queries
// masked to zero service — exactly the Tiered mechanics, but with
// whole subtrees where Tiered has single fleets.
//
// Determinism and decorrelation follow the existing pairings: every
// leaf shares the graph's arrival process (same Seed), and the
// builder decorrelates per-leaf reissue coins by accumulating the
// SAME structural salts along the path that the live constructors
// apply (tier.New XORs stats.Mix64NonZero(1) into its store client's
// seed; shard.New XORs Mix64NonZero(s+1) into shard s>0's). The
// degenerate compositions therefore collapse bit for bit: a 1-shard
// node or an Inf-delay/hit-rate-1 tier adds no salt and no mask
// flips, so the graph replays the uncomposed Cluster exactly.

// GraphNode is one node of a composed simulation graph: a leaf
// Cluster, a shard fan-out, or a cache→store tier.
type GraphNode interface {
	// runAll replays the shared arrival process for every query
	// (warmup included) and returns per-query response times in query
	// order; the Graph root trims warmup.
	runAll(polFor func(path string) reissue.Policy) []float64
	// addMask registers an enclosing tier's shielded stream: leaves
	// mask shielded queries to zero service, and every node excludes
	// them from its rate denominators.
	addMask(shielded []bool)
	// collect gathers per-node statistics from the most recent runAll.
	collect(out *GraphResult, warmup int)
}

// maskStack generalizes maskedSource to nested tiers: each enclosing
// tier contributes one shielded stream, and a query masked by any of
// them takes zero service while the inner source's stream is still
// consumed in query order (non-shielded draws stay independent of
// what the caches shielded).
type maskStack struct {
	inner ServiceSource
	masks [][]bool
	next  int
}

func (m *maskStack) Sample(r *stats.RNG) (float64, float64) {
	p, re := m.inner.Sample(r)
	if m.shieldedAt(m.next) {
		p, re = 0, 0
	}
	m.next++
	return p, re
}

func (m *maskStack) Reset() {
	m.inner.Reset()
	m.next = 0
}

func (m *maskStack) shieldedAt(i int) bool {
	for _, mask := range m.masks {
		if i < len(mask) && mask[i] {
			return true
		}
	}
	return false
}

// GraphLeaf is a graph node over one replicated fleet: an ordinary
// Cluster whose source may be masked by enclosing tiers.
type GraphLeaf struct {
	path    string
	cluster *Cluster
	mask    *maskStack
	total   int

	last *Result
}

// NewGraphLeaf builds a leaf over cfg. The graph runs every leaf over
// the full query count with the root trimming warmup, so cfg.Queries
// must be the graph's total (Queries + Warmup at the root) and
// cfg.Warmup zero. Structural seed salts (PolicySeed/ServiceSeed)
// are the caller's job — accumulate along the path exactly as the
// live constructors do.
func NewGraphLeaf(path string, cfg Config) (*GraphLeaf, error) {
	if cfg.Warmup != 0 {
		return nil, fmt.Errorf("cluster: graph leaf %q has Warmup=%d — the graph root trims warmup", path, cfg.Warmup)
	}
	if cfg.FanOut > 1 {
		return nil, fmt.Errorf("cluster: graph leaf %q has FanOut=%d — compose a shard node instead", path, cfg.FanOut)
	}
	if cfg.Source == nil {
		return nil, fmt.Errorf("cluster: graph leaf %q needs a service source", path)
	}
	if ts, ok := cfg.Source.(*TraceSource); ok && len(ts.Times) == 0 {
		return nil, fmt.Errorf("cluster: graph leaf %q TraceSource has no service times", path)
	}
	mask := &maskStack{inner: cfg.Source}
	cfg.Source = mask
	c, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("graph leaf %q: %w", path, err)
	}
	return &GraphLeaf{path: path, cluster: c, mask: mask, total: cfg.Queries}, nil
}

// Cluster exposes the leaf's underlying cluster (engine warming via
// AdoptState, configuration inspection).
func (l *GraphLeaf) Cluster() *Cluster { return l.cluster }

func (l *GraphLeaf) runAll(polFor func(string) reissue.Policy) []float64 {
	l.last = l.cluster.RunDetailed(polFor(l.path))
	rts := l.last.Log.ResponseTimes()
	if len(rts) != l.total {
		panic(fmt.Sprintf("cluster: graph leaf %q measured %d queries, want %d", l.path, len(rts), l.total))
	}
	return rts
}

func (l *GraphLeaf) addMask(shielded []bool) {
	l.mask.masks = append(l.mask.masks, shielded)
}

func (l *GraphLeaf) collect(out *GraphResult, warmup int) {
	dispatched, copies := 0, 0
	for i := warmup; i < l.total; i++ {
		if l.mask.shieldedAt(i) {
			continue
		}
		dispatched++
		copies += l.last.Log.Records[i].Reissues
	}
	rate := 0.0
	if dispatched > 0 {
		rate = float64(copies) / float64(dispatched)
	}
	out.LeafRates[l.path] = rate
}

// GraphShard max-merges its children: every child replays every
// arrival (the data is partitioned, each query touches all shards)
// and the composed query completes when the slowest child answers —
// the Sharded merge, lifted to arbitrary child subtrees.
type GraphShard struct {
	path     string
	children []GraphNode
	total    int
}

// NewGraphShard builds a shard fan-out over the given child
// subtrees.
func NewGraphShard(path string, total int, children ...GraphNode) (*GraphShard, error) {
	if len(children) == 0 {
		return nil, fmt.Errorf("cluster: graph shard %q has no children", path)
	}
	for s, ch := range children {
		if ch == nil {
			return nil, fmt.Errorf("cluster: graph shard %q child %d is nil", path, s)
		}
	}
	return &GraphShard{path: path, children: children, total: total}, nil
}

func (g *GraphShard) runAll(polFor func(string) reissue.Policy) []float64 {
	resp := make([]float64, g.total)
	for s, ch := range g.children {
		rts := ch.runAll(polFor)
		if len(rts) != g.total {
			panic(fmt.Sprintf("cluster: graph shard %q child %d returned %d queries, want %d", g.path, s, len(rts), g.total))
		}
		if s == 0 {
			copy(resp, rts)
			continue
		}
		for i, rt := range rts {
			if rt > resp[i] {
				resp[i] = rt
			}
		}
	}
	return resp
}

func (g *GraphShard) addMask(shielded []bool) {
	for _, ch := range g.children {
		ch.addMask(shielded)
	}
}

func (g *GraphShard) collect(out *GraphResult, warmup int) {
	for _, ch := range g.children {
		ch.collect(out, warmup)
	}
}

// GraphTier runs its cache subtree first, shields the queries the
// cache answers within the tier delay (the shared Bernoulli hit
// stream decides which queries CAN hit), then runs its store subtree
// with the shielded queries masked to zero service, and merges each
// query's end-to-end response by the Tiered rules.
type GraphTier struct {
	path         string
	cache, store GraphNode
	hits         []bool
	delay        float64
	total        int

	// shielded is shared with the store subtree's leaf masks; written
	// per run after the cache subtree answers.
	shielded []bool
	// enclosing holds outer tiers' shielded streams — this tier's own
	// rate denominators exclude queries an outer cache absorbed.
	enclosing [][]bool
}

// NewGraphTier builds a tier node over the cache and store subtrees,
// installing the tier's shield mask on every leaf under the store
// subtree. hits must cover total queries and be the SAME bit stream
// the live tier consumes (kvstore.CacheWorkload.Hits).
func NewGraphTier(path string, cache, store GraphNode, hits []bool, delay float64, total int) (*GraphTier, error) {
	if cache == nil || store == nil {
		return nil, fmt.Errorf("cluster: graph tier %q needs both cache and store subtrees", path)
	}
	if len(hits) < total {
		return nil, fmt.Errorf("cluster: graph tier %q has %d hit bits for %d queries — the live and simulated runs must share one stream", path, len(hits), total)
	}
	if math.IsNaN(delay) || delay < 0 {
		return nil, fmt.Errorf("cluster: graph tier %q TierDelay=%v must be non-negative (math.Inf(1) disables the proactive hedge)", path, delay)
	}
	t := &GraphTier{
		path: path, cache: cache, store: store,
		hits: hits, delay: delay, total: total,
		shielded: make([]bool, total),
	}
	store.addMask(t.shielded)
	return t, nil
}

func (t *GraphTier) runAll(polFor func(string) reissue.Policy) []float64 {
	crt := t.cache.runAll(polFor)
	if len(crt) != t.total {
		panic(fmt.Sprintf("cluster: graph tier %q cache returned %d queries, want %d", t.path, len(crt), t.total))
	}
	for i := 0; i < t.total; i++ {
		t.shielded[i] = t.hits[i] && crt[i] <= t.delay
	}
	srt := t.store.runAll(polFor)

	resp := make([]float64, t.total)
	for i := 0; i < t.total; i++ {
		switch {
		case t.shielded[i]:
			// Hit answered within the tier delay: the store sub-query
			// was never sent (the completion check).
			resp[i] = crt[i]
		case t.hits[i]:
			// Slow hit: the proactive store copy dispatched at
			// TierDelay races the cache answer; first valid wins.
			resp[i] = math.Min(crt[i], t.delay+srt[i])
		default:
			// Miss: the store dispatches at the tier delay or when
			// the miss is known, whichever is earlier, and only the
			// store can answer.
			resp[i] = math.Min(t.delay, crt[i]) + srt[i]
		}
	}
	return resp
}

func (t *GraphTier) addMask(shielded []bool) {
	t.enclosing = append(t.enclosing, shielded)
	t.cache.addMask(shielded)
	t.store.addMask(shielded)
}

func (t *GraphTier) collect(out *GraphResult, warmup int) {
	measured, dispatched := 0, 0
	for i := warmup; i < t.total; i++ {
		if t.outerShielded(i) {
			continue
		}
		measured++
		if !t.shielded[i] {
			dispatched++
		}
	}
	rate := 0.0
	if measured > 0 {
		rate = float64(dispatched) / float64(measured)
	}
	out.TierRates[t.path] = rate
	t.cache.collect(out, warmup)
	t.store.collect(out, warmup)
}

func (t *GraphTier) outerShielded(i int) bool {
	for _, mask := range t.enclosing {
		if i < len(mask) && mask[i] {
			return true
		}
	}
	return false
}

// Graph is a composed simulation topology: a tree of leaf Clusters,
// shard fan-outs, and cache→store tiers sharing one arrival process.
// Like Cluster, a Graph must not execute two Runs concurrently.
type Graph struct {
	root   GraphNode
	total  int
	warmup int
}

// NewGraph roots a graph over total = queries + warmup arrivals;
// every leaf must have been built with Queries=total and Warmup=0.
func NewGraph(root GraphNode, queries, warmup int) (*Graph, error) {
	if root == nil {
		return nil, fmt.Errorf("cluster: graph needs a root node")
	}
	if queries <= 0 || warmup < 0 {
		return nil, fmt.Errorf("cluster: graph needs positive queries (got %d) and non-negative warmup (got %d)", queries, warmup)
	}
	return &Graph{root: root, total: queries + warmup, warmup: warmup}, nil
}

// GraphResult is the outcome of one composed run.
type GraphResult struct {
	// Query holds the measured end-to-end response times in query
	// order.
	Query []float64
	// LeafRates maps each leaf's path to its within-fleet reissue
	// rate: reissue copies over that leaf's dispatched sub-queries
	// (queries no enclosing cache absorbed).
	LeafRates map[string]float64
	// TierRates maps each tier node's path to the fraction of its
	// dispatched queries that sent a store sub-query — the statistic
	// the tier's delay knob controls.
	TierRates map[string]float64
}

// TailLatency returns the k-th quantile (k in (0,1)) of the
// end-to-end response times, with the same nearest-rank formula as
// the single-fleet RunResult.
func (r *GraphResult) TailLatency(k float64) float64 {
	return reissue.RunResult{Query: r.Query}.TailLatency(k)
}

// Run replays the graph once: polFor supplies each leaf's
// within-fleet policy by leaf path (return reissue.None{} for
// no-reissue). Composite edges have no policy here by construction —
// reissuing a whole subtree has no live counterpart the builder
// permits.
func (g *Graph) Run(polFor func(path string) reissue.Policy) *GraphResult {
	resp := g.root.runAll(polFor)
	out := &GraphResult{
		Query:     append([]float64(nil), resp[g.warmup:]...),
		LeafRates: map[string]float64{},
		TierRates: map[string]float64{},
	}
	g.root.collect(out, g.warmup)
	return out
}
