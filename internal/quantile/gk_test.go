package quantile

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// rankError returns |rank(got) - p*n| / n against the sorted truth.
func rankError(sorted []float64, got, p float64) float64 {
	n := len(sorted)
	rank := sort.SearchFloat64s(sorted, got)
	// Allow any rank covered by equal values.
	hi := sort.Search(n, func(i int) bool { return sorted[i] > got })
	target := p * float64(n)
	lo64, hi64 := float64(rank), float64(hi)
	switch {
	case target < lo64:
		return (lo64 - target) / float64(n)
	case target > hi64:
		return (target - hi64) / float64(n)
	default:
		return 0
	}
}

func TestGKInvalidEpsilonPanics(t *testing.T) {
	for _, eps := range []float64{0, -0.1, 0.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("eps=%v accepted", eps)
				}
			}()
			NewGK(eps)
		}()
	}
}

func TestGKEmptyAndNaN(t *testing.T) {
	s := NewGK(0.01)
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Error("empty quantile not NaN")
	}
	defer func() {
		if recover() == nil {
			t.Error("Add(NaN) did not panic")
		}
	}()
	s.Add(math.NaN())
}

func TestGKQuantileRangePanics(t *testing.T) {
	s := NewGK(0.01)
	s.Add(1)
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) accepted", p)
				}
			}()
			s.Quantile(p)
		}()
	}
}

func TestGKExactOnSmallInput(t *testing.T) {
	s := NewGK(0.01)
	for i := 10; i >= 1; i-- {
		s.Add(float64(i))
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("min = %v", got)
	}
	if got := s.Quantile(1); got != 10 {
		t.Errorf("max = %v", got)
	}
	if got := s.Quantile(0.5); math.Abs(got-5) > 1 {
		t.Errorf("median = %v", got)
	}
}

func TestGKAccuracyUniform(t *testing.T) {
	const eps = 0.005
	const n = 50000
	s := NewGK(eps)
	r := stats.NewRNG(1)
	vals := make([]float64, n)
	for i := range vals {
		v := r.Float64() * 1000
		vals[i] = v
		s.Add(v)
	}
	sort.Float64s(vals)
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999} {
		got := s.Quantile(p)
		if e := rankError(vals, got, p); e > eps*1.5 {
			t.Errorf("p=%v: rank error %v > %v (got %v)", p, e, eps, got)
		}
	}
}

func TestGKAccuracyHeavyTail(t *testing.T) {
	const eps = 0.005
	const n = 50000
	s := NewGK(eps)
	r := stats.NewRNG(2)
	d := stats.NewPareto(1.1, 2)
	vals := make([]float64, n)
	for i := range vals {
		v := d.Sample(r)
		vals[i] = v
		s.Add(v)
	}
	sort.Float64s(vals)
	for _, p := range []float64{0.5, 0.95, 0.99} {
		got := s.Quantile(p)
		if e := rankError(vals, got, p); e > eps*1.5 {
			t.Errorf("p=%v: rank error %v > %v", p, e, eps)
		}
	}
}

func TestGKSpaceSublinear(t *testing.T) {
	const eps = 0.01
	s := NewGK(eps)
	r := stats.NewRNG(3)
	for i := 0; i < 200000; i++ {
		s.Add(r.Float64())
	}
	// GK space bound is O((1/eps) * log(eps*n)); allow a generous
	// constant. Storing all 200k samples would be 200000.
	limit := int(11.0 / eps * math.Log2(eps*200000+2))
	if s.Size() > limit {
		t.Fatalf("sketch holds %d tuples, limit %d", s.Size(), limit)
	}
}

func TestGKSortedAndReverseInputs(t *testing.T) {
	for name, gen := range map[string]func(i int) float64{
		"ascending":  func(i int) float64 { return float64(i) },
		"descending": func(i int) float64 { return float64(100000 - i) },
		"constant":   func(int) float64 { return 7 },
	} {
		s := NewGK(0.01)
		var vals []float64
		for i := 0; i < 20000; i++ {
			v := gen(i)
			vals = append(vals, v)
			s.Add(v)
		}
		sort.Float64s(vals)
		for _, p := range []float64{0.1, 0.5, 0.99} {
			got := s.Quantile(p)
			if e := rankError(vals, got, p); e > 0.015 {
				t.Errorf("%s p=%v: rank error %v", name, p, e)
			}
		}
	}
}

func TestGKReset(t *testing.T) {
	s := NewGK(0.01)
	for i := 0; i < 100; i++ {
		s.Add(float64(i))
	}
	s.Reset()
	if s.N() != 0 || s.Size() != 0 {
		t.Fatal("Reset did not clear")
	}
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("post-Reset quantile not NaN")
	}
	s.Add(42)
	if got := s.Quantile(0.5); got != 42 {
		t.Fatalf("post-Reset Add broken: %v", got)
	}
}

func TestWindowedTracksShift(t *testing.T) {
	w := NewWindowed(0.01, 5000)
	r := stats.NewRNG(4)
	// Phase 1: values near 10.
	for i := 0; i < 10000; i++ {
		w.Add(10 + r.Float64())
	}
	if got := w.Quantile(0.95); got < 10 || got > 11 {
		t.Fatalf("phase-1 P95 = %v", got)
	}
	// Phase 2: distribution shifts to near 100; the window must
	// follow within ~2 windows of samples.
	for i := 0; i < 10000; i++ {
		w.Add(100 + r.Float64())
	}
	if got := w.Quantile(0.95); got < 95 {
		t.Fatalf("windowed P95 = %v did not track the shift", got)
	}
}

func TestWindowedValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("window=0 accepted")
		}
	}()
	NewWindowed(0.01, 0)
}

func TestWindowedEmpty(t *testing.T) {
	w := NewWindowed(0.01, 100)
	if !math.IsNaN(w.Quantile(0.5)) {
		t.Fatal("empty windowed quantile not NaN")
	}
	if w.N() != 0 {
		t.Fatal("empty N != 0")
	}
}

// Property: GK quantiles are monotone in p and always within the
// observed min/max.
func TestGKMonotoneProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%2000) + 1
		r := stats.NewRNG(seed)
		s := NewGK(0.01)
		min, max := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			v := r.Float64() * 100
			min = math.Min(min, v)
			max = math.Max(max, v)
			s.Add(v)
		}
		last := math.Inf(-1)
		for _, p := range []float64{0, 0.25, 0.5, 0.75, 0.9, 1} {
			q := s.Quantile(p)
			if q < last-1e-12 || q < min || q > max {
				return false
			}
			last = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGKAdd(b *testing.B) {
	s := NewGK(0.001)
	r := stats.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(r.Float64())
	}
}

func BenchmarkGKQuantile(b *testing.B) {
	s := NewGK(0.001)
	r := stats.NewRNG(1)
	for i := 0; i < 100000; i++ {
		s.Add(r.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Quantile(0.99)
	}
}
