// Package quantile provides an epsilon-approximate streaming quantile
// sketch (Greenwald-Khanna, SIGMOD 2001). The online adaptation
// scenario of the paper's Section 4.4 — response-time distributions
// drifting over hours or days — needs tail-latency estimates over
// unbounded streams without retaining every sample; the GK sketch
// answers any quantile query within epsilon rank error using
// O((1/epsilon) log(epsilon N)) space.
package quantile

import (
	"fmt"
	"math"
)

// tuple is one GK summary entry: a stored value v, g = rankMin(v) -
// rankMin(prev), and del = rankMax(v) - rankMin(v).
type tuple struct {
	v   float64
	g   int
	del int
}

// GK is a Greenwald-Khanna epsilon-approximate quantile sketch.
// It is not safe for concurrent use.
type GK struct {
	eps     float64
	tuples  []tuple
	n       int
	pending int // inserts since last compress
}

// NewGK creates a sketch answering quantile queries within eps rank
// error (e.g. eps = 0.001 answers P99 within ±0.1% of rank). It
// panics on a non-positive or >= 0.5 epsilon.
func NewGK(eps float64) *GK {
	if eps <= 0 || eps >= 0.5 || math.IsNaN(eps) {
		panic(fmt.Sprintf("quantile: invalid epsilon %v", eps))
	}
	return &GK{eps: eps}
}

// N returns the number of observations added.
func (s *GK) N() int { return s.n }

// Size returns the number of summary tuples retained.
func (s *GK) Size() int { return len(s.tuples) }

// Add inserts one observation. NaN values panic: silently accepting
// them would poison every later query.
func (s *GK) Add(v float64) {
	if math.IsNaN(v) {
		panic("quantile: Add(NaN)")
	}
	// Find insertion position (first tuple with value >= v).
	lo, hi := 0, len(s.tuples)
	for lo < hi {
		mid := lo + (hi-lo)/2
		if s.tuples[mid].v < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	del := 0
	if lo > 0 && lo < len(s.tuples) {
		// Interior insert: the new tuple's uncertainty matches the
		// local bound.
		del = int(2*s.eps*float64(s.n)) - 1
		if del < 0 {
			del = 0
		}
	}
	nt := tuple{v: v, g: 1, del: del}
	s.tuples = append(s.tuples, tuple{})
	copy(s.tuples[lo+1:], s.tuples[lo:])
	s.tuples[lo] = nt
	s.n++
	s.pending++
	if s.pending >= int(1/(2*s.eps)) {
		s.compress()
		s.pending = 0
	}
}

// compress merges adjacent tuples whose combined uncertainty stays
// within the 2*eps*n bound.
func (s *GK) compress() {
	if len(s.tuples) < 3 {
		return
	}
	bound := int(2 * s.eps * float64(s.n))
	out := s.tuples[:1] // never merge away the minimum
	for i := 1; i < len(s.tuples)-1; i++ {
		t := s.tuples[i]
		last := &out[len(out)-1]
		if len(out) > 1 && last.g+t.g+t.del <= bound {
			// Merge the previous tuple into this one.
			t.g += last.g
			out = out[:len(out)-1]
		}
		out = append(out, t)
	}
	out = append(out, s.tuples[len(s.tuples)-1]) // never merge the maximum
	s.tuples = out
}

// Quantile returns a value whose rank is within eps*N of ceil(p*N).
// It panics on p outside [0, 1] and returns NaN on an empty sketch.
func (s *GK) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("quantile: Quantile(%v) outside [0, 1]", p))
	}
	if s.n == 0 {
		return math.NaN()
	}
	target := int(math.Ceil(p * float64(s.n)))
	if target < 1 {
		target = 1
	}
	bound := int(s.eps * float64(s.n))
	rankMin := 0
	for i, t := range s.tuples {
		rankMin += t.g
		rankMax := rankMin + t.del
		if target-rankMin <= bound && rankMax-target <= bound {
			return t.v
		}
		if i == len(s.tuples)-1 {
			break
		}
	}
	return s.tuples[len(s.tuples)-1].v
}

// Percentile is shorthand for Quantile(k/100).
func (s *GK) Percentile(k float64) float64 { return s.Quantile(k / 100) }

// Reset empties the sketch, keeping its epsilon.
func (s *GK) Reset() {
	s.tuples = s.tuples[:0]
	s.n = 0
	s.pending = 0
}

// Windowed wraps a pair of GK sketches to answer quantile queries
// over (approximately) the most recent Window observations: a classic
// two-pane rotation where the older pane is dropped whenever the
// active pane fills. Rank error within a pane is eps; across the
// rotation boundary the estimate covers between Window and 2*Window
// recent samples.
type Windowed struct {
	eps    float64
	window int
	cur    *GK
	prev   *GK
}

// NewWindowed creates a windowed estimator over the last `window`
// observations (approximately). It panics on a non-positive window.
func NewWindowed(eps float64, window int) *Windowed {
	if window <= 0 {
		panic(fmt.Sprintf("quantile: invalid window %d", window))
	}
	return &Windowed{eps: eps, window: window, cur: NewGK(eps)}
}

// Add inserts one observation, rotating panes when the active pane
// reaches the window size.
func (w *Windowed) Add(v float64) {
	w.cur.Add(v)
	if w.cur.N() >= w.window {
		w.prev = w.cur
		w.cur = NewGK(w.eps)
	}
}

// Quantile estimates the p-th quantile over the recent window by
// querying both panes and weighting by their sizes. Returns NaN when
// nothing has been observed.
func (w *Windowed) Quantile(p float64) float64 {
	switch {
	case w.prev == nil || w.prev.N() == 0:
		return w.cur.Quantile(p)
	case w.cur.N() == 0:
		return w.prev.Quantile(p)
	default:
		qc := w.cur.Quantile(p)
		qp := w.prev.Quantile(p)
		fc := float64(w.cur.N()) / float64(w.cur.N()+w.prev.N())
		return fc*qc + (1-fc)*qp
	}
}

// N returns the number of observations covered by the current
// estimate (both panes).
func (w *Windowed) N() int {
	n := w.cur.N()
	if w.prev != nil {
		n += w.prev.N()
	}
	return n
}
