// Ablation benchmarks for the design choices DESIGN.md calls out:
// the correlation-aware optimizer vs the independence assumption,
// randomized vs deterministic policies at small budgets, reissue
// cancellation ("tied requests"), and server interference. Each
// reports the achieved tail latency as a custom metric (p95_ms or
// p99_ms) alongside the usual time/op.
package repro_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/reissue"
)

// BenchmarkAblationCorrelatedOptimizer measures the value of the
// Section 4.2 conditional-CDF optimizer on the Correlated workload:
// the "independent" variant ignores the X-Y correlation and reissues
// too late with too much probability.
func BenchmarkAblationCorrelatedOptimizer(b *testing.B) {
	const k, budget = 0.95, 0.10
	wl, err := workload.Correlated(workload.Options{Queries: 20000, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	probe := wl.RunDetailed(reissue.SingleD{D: 0})

	b.Run("correlated", func(b *testing.B) {
		var p95 float64
		for i := 0; i < b.N; i++ {
			pol, _, err := reissue.ComputeOptimalSingleRCorrelated(
				probe.Log.PrimaryTimes(), probe.Pairs, k, budget)
			if err != nil {
				b.Fatal(err)
			}
			p95 = metrics.TailLatency(wl.RunDetailed(pol).Log.ResponseTimes(), 95)
		}
		b.ReportMetric(p95, "p95_ms")
	})
	b.Run("independent", func(b *testing.B) {
		var p95 float64
		for i := 0; i < b.N; i++ {
			pol, _, err := reissue.ComputeOptimalSingleR(
				probe.Log.PrimaryTimes(), probe.Log.ReissueTimes(), k, budget)
			if err != nil {
				b.Fatal(err)
			}
			p95 = metrics.TailLatency(wl.RunDetailed(pol).Log.ResponseTimes(), 95)
		}
		b.ReportMetric(p95, "p95_ms")
	})
}

// BenchmarkAblationRandomization compares SingleR against SingleD at
// a budget below 1-k, where Section 2.4 proves SingleD cannot help.
func BenchmarkAblationRandomization(b *testing.B) {
	const k, budget = 0.95, 0.02
	wl, err := workload.Independent(workload.Options{Queries: 20000, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	probe := wl.RunDetailed(reissue.SingleD{D: 0})
	rx := probe.Log.PrimaryTimes()

	b.Run("singler", func(b *testing.B) {
		var p95 float64
		for i := 0; i < b.N; i++ {
			pol, _, err := reissue.ComputeOptimalSingleR(rx, probe.Log.ReissueTimes(), k, budget)
			if err != nil {
				b.Fatal(err)
			}
			p95 = metrics.TailLatency(wl.RunDetailed(pol).Log.ResponseTimes(), 95)
		}
		b.ReportMetric(p95, "p95_ms")
	})
	b.Run("singled", func(b *testing.B) {
		var p95 float64
		for i := 0; i < b.N; i++ {
			pol, err := reissue.OptimalSingleD(rx, budget)
			if err != nil {
				b.Fatal(err)
			}
			p95 = metrics.TailLatency(wl.RunDetailed(pol).Log.ResponseTimes(), 95)
		}
		b.ReportMetric(p95, "p95_ms")
	})
}

// BenchmarkAblationCancellation measures what the tied-requests
// extension buys under aggressive immediate reissue at 50%
// utilization.
func BenchmarkAblationCancellation(b *testing.B) {
	dist := stats.NewExponential(0.1)
	for _, cancel := range []bool{false, true} {
		name := "keep-redundant"
		if cancel {
			name = "cancel-on-complete"
		}
		b.Run(name, func(b *testing.B) {
			var p99 float64
			for i := 0; i < b.N; i++ {
				c, err := cluster.New(cluster.Config{
					Servers:          10,
					ArrivalRate:      cluster.ArrivalRateForUtilization(0.5, 10, dist.Mean()),
					Queries:          15000,
					Warmup:           1500,
					Source:           cluster.DistSource{Dist: dist},
					Seed:             21,
					CancelOnComplete: cancel,
				})
				if err != nil {
					b.Fatal(err)
				}
				res := c.RunDetailed(reissue.Immediate{N: 1})
				p99 = metrics.TailLatency(res.Log.ResponseTimes(), 99)
			}
			b.ReportMetric(p99, "p99_ms")
		})
	}
}

// BenchmarkAblationInterference contrasts the system experiments'
// baseline P99 with and without the background-interference model the
// reproduction adds to match the paper's testbed regime.
func BenchmarkAblationInterference(b *testing.B) {
	times, err := experiments.RedisServiceTimes()
	if err != nil {
		b.Fatal(err)
	}
	var mean float64
	for _, v := range times {
		mean += v
	}
	mean /= float64(len(times))

	for _, withIv := range []bool{false, true} {
		name := "pristine"
		var iv *cluster.Interference
		if withIv {
			name = "interference"
			iv = experiments.SystemInterference()
		}
		b.Run(name, func(b *testing.B) {
			var p99 float64
			for i := 0; i < b.N; i++ {
				c, err := cluster.New(cluster.Config{
					Servers:      10,
					ArrivalRate:  cluster.ArrivalRateForUtilization(0.4, 10, mean),
					Queries:      15000,
					Warmup:       1500,
					Source:       &cluster.TraceSource{Times: times},
					Discipline:   cluster.RoundRobin,
					Interference: iv,
					Seed:         23,
				})
				if err != nil {
					b.Fatal(err)
				}
				res := c.RunDetailed(reissue.None{})
				p99 = metrics.TailLatency(res.Log.ResponseTimes(), 99)
			}
			b.ReportMetric(p99, "p99_ms")
		})
	}
}
